(* Name-keyed engine selection: the one place that knows which engine
   modules exist. The CLI, the tuner and the bench all resolve engines
   through [find], so adding an engine means adding it here instead of
   updating four hand-written match arms. *)

module Interp_naive : Engine_intf.S = struct
  let name = "interp-naive"

  let run ?on_hit = function
    | Engine_intf.Space space ->
      Engine_interp.run ?on_hit ~variant:`Naive space
    | Engine_intf.Plan plan ->
      (* A handed-in plan is executed as given: the naive cost model
         only exists for spaces this engine plans itself. *)
      Engine_interp.run_plan ?on_hit plan

  let resumable = None
end

module Interp : Engine_intf.S = struct
  let name = "interp"

  let run ?on_hit = function
    | Engine_intf.Space space ->
      Engine_interp.run ?on_hit ~variant:`Hoisted space
    | Engine_intf.Plan plan -> Engine_interp.run_plan ?on_hit plan

  let resumable = None
end

module Vm : Engine_intf.S = struct
  let name = "vm"

  let run ?on_hit = function
    | Engine_intf.Space space -> Engine_vm.run_space ?on_hit space
    | Engine_intf.Plan plan -> Engine_vm.run_plan ?on_hit plan

  let resumable = None
end

module Staged : Engine_intf.S = struct
  let name = "staged"

  let run ?on_hit = function
    | Engine_intf.Space space -> Engine_staged.run_space ?on_hit space
    | Engine_intf.Plan plan -> Engine_staged.run ?on_hit plan

  let resumable = None
end

let default_parallel_domains = 4

let parallel domains : (module Engine_intf.S) =
  if domains < 1 then invalid_arg "Engine_registry.parallel: domains < 1";
  (module struct
    let name = Printf.sprintf "parallel-%d" domains

    let run ?on_hit = function
      | Engine_intf.Space space ->
        Engine_parallel.run_space ?on_hit ~domains space
      | Engine_intf.Plan plan -> Engine_parallel.run ?on_hit ~domains plan

    let resumable =
      Some
        (fun ?on_hit ?checkpoint ?resume ?fault plan ->
          Engine_parallel.run_resumable ?on_hit ?checkpoint ?resume ?fault
            ~domains plan)
  end)

module Native : Engine_intf.S = struct
  let name = "native"

  let run ?on_hit = function
    | Engine_intf.Space space -> Engine_native.run_space ?on_hit space
    | Engine_intf.Plan plan -> Engine_native.run ?on_hit plan

  let resumable = None
end

let default_native_threads = 1

let native threads : (module Engine_intf.S) =
  if threads < 1 then invalid_arg "Engine_registry.native: threads < 1";
  (module struct
    let name = Printf.sprintf "native-%d" threads

    let run ?on_hit = function
      | Engine_intf.Space space ->
        Engine_native.run_space ?on_hit ~threads space
      | Engine_intf.Plan plan -> Engine_native.run ?on_hit ~threads plan

    let resumable = None
  end)

(* The single source of truth for what engines exist and how the CLI
   should treat them: [names] (help text, error messages), the
   [beast engines] listing, the per-engine --propagate default and the
   resumable/opaque capability checks all derive from these entries,
   so none of them can drift from [find]. *)
type entry = {
  e_spec : string;  (* accepted spec, parameters in brackets *)
  e_descr : string;  (* one line for [beast engines] *)
  e_propagate_default : bool;
      (* run [Propagate.pass] over the plan unless --propagate
         overrides; off only for the deliberately-unoptimized
         baseline, whose cost model is the whole point *)
  e_opaque : bool;
      (* can evaluate opaque computes and iterators (deferred OCaml
         closures); the generated-C tier cannot call back into the
         host program *)
  e_resumable : bool;  (* keeps a chunk ledger (checkpoint/resume/fault) *)
}

let catalog =
  [
    {
      e_spec = "interp-naive";
      e_descr =
        "tree-walking interpreter, nothing hoisted (the paper's \
         scripting-language baseline)";
      e_propagate_default = false;
      e_opaque = true;
      e_resumable = false;
    };
    {
      e_spec = "interp";
      e_descr = "tree-walking interpreter over the hoisted plan";
      e_propagate_default = true;
      e_opaque = true;
      e_resumable = false;
    };
    {
      e_spec = "vm";
      e_descr = "bytecode compiler + stack VM";
      e_propagate_default = true;
      e_opaque = true;
      e_resumable = false;
    };
    {
      e_spec = "staged";
      e_descr = "closure-staged compiler (the default)";
      e_propagate_default = true;
      e_opaque = true;
      e_resumable = false;
    };
    {
      e_spec = "parallel[:DOMAINS]";
      e_descr =
        "work-stealing staged sweep across OCaml domains (default 4); the \
         only resumable engine";
      e_propagate_default = true;
      e_opaque = true;
      e_resumable = true;
    };
    {
      e_spec = "native[:THREADS]";
      e_descr =
        "generated C compiled with $BEAST_CC/cc -O2 and run as a subprocess \
         (default 1 thread)";
      e_propagate_default = true;
      e_opaque = false;
      e_resumable = false;
    };
  ]

let names = List.map (fun e -> e.e_spec) catalog

let entry_base e =
  match String.index_opt e.e_spec '[' with
  | None -> e.e_spec
  | Some k -> String.sub e.e_spec 0 k

(* Accepts both spec syntax ("parallel:8") and resolved engine names
   ("parallel-8"): exact base first, so "interp-naive" never falls into
   "interp"'s parameterized-suffix case. *)
let entry_of spec =
  match List.find_opt (fun e -> entry_base e = spec) catalog with
  | Some _ as found -> found
  | None ->
    List.find_opt
      (fun e ->
        let b = entry_base e in
        let lb = String.length b in
        String.length spec > lb
        && String.sub spec 0 lb = b
        && (spec.[lb] = ':' || spec.[lb] = '-'))
      catalog

let find spec : ((module Engine_intf.S), string) result =
  let base, param =
    match String.index_opt spec ':' with
    | None -> (spec, None)
    | Some k ->
      ( String.sub spec 0 k,
        Some (String.sub spec (k + 1) (String.length spec - k - 1)) )
  in
  let fixed m =
    match param with
    | None -> Ok m
    | Some p ->
      Error
        (Printf.sprintf "the %s engine takes no parameter (got %S)" base p)
  in
  match base with
  | "interp-naive" -> fixed (module Interp_naive : Engine_intf.S)
  | "interp" -> fixed (module Interp : Engine_intf.S)
  | "vm" -> fixed (module Vm : Engine_intf.S)
  | "staged" -> fixed (module Staged : Engine_intf.S)
  | "parallel" -> (
    match param with
    | None -> Ok (parallel default_parallel_domains)
    | Some p -> (
      match int_of_string_opt p with
      | Some n when n >= 1 -> Ok (parallel n)
      | Some n ->
        Error (Printf.sprintf "parallel: need at least 1 domain (got %d)" n)
      | None ->
        Error
          (Printf.sprintf "parallel: expected a domain count, got %S" p)))
  | "native" -> (
    match param with
    | None -> Ok (module Native : Engine_intf.S)
    | Some p -> (
      match int_of_string_opt p with
      | Some n when n >= 1 -> Ok (native n)
      | Some n ->
        Error (Printf.sprintf "native: need at least 1 thread (got %d)" n)
      | None ->
        Error (Printf.sprintf "native: expected a thread count, got %S" p)))
  | _ ->
    Error
      (Printf.sprintf "unknown engine %s (try: %s)" spec
         (String.concat ", " names))
