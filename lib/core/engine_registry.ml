(* Name-keyed engine selection: the one place that knows which engine
   modules exist. The CLI, the tuner and the bench all resolve engines
   through [find], so adding an engine means adding it here instead of
   updating four hand-written match arms. *)

let not_plan_based name =
 fun ?on_hit:_ _ ->
  invalid_arg
    (Printf.sprintf
       "the %s engine walks the space directly and cannot run a plan \
        (chunked or sharded sweeps need vm, staged or parallel)"
       name)

module Interp_naive : Engine_intf.S = struct
  let name = "interp-naive"
  let plan_based = false
  let run_space ?on_hit space = Engine_interp.run ?on_hit ~variant:`Naive space
  let run_plan = not_plan_based name
  let resumable = None
end

module Interp : Engine_intf.S = struct
  let name = "interp"
  let plan_based = false
  let run_space ?on_hit space = Engine_interp.run ?on_hit ~variant:`Hoisted space
  let run_plan = not_plan_based name
  let resumable = None
end

module Vm : Engine_intf.S = struct
  let name = "vm"
  let plan_based = true
  let run_space = Engine_vm.run_space
  let run_plan = Engine_vm.run_plan
  let resumable = None
end

module Staged : Engine_intf.S = struct
  let name = "staged"
  let plan_based = true
  let run_space = Engine_staged.run_space
  let run_plan = Engine_staged.run
  let resumable = None
end

let default_parallel_domains = 4

let parallel domains : (module Engine_intf.S) =
  if domains < 1 then invalid_arg "Engine_registry.parallel: domains < 1";
  (module struct
    let name = Printf.sprintf "parallel-%d" domains
    let plan_based = true

    let run_space ?on_hit space =
      Engine_parallel.run_space ?on_hit ~domains space

    let run_plan ?on_hit plan = Engine_parallel.run ?on_hit ~domains plan

    let resumable =
      Some
        (fun ?on_hit ?checkpoint ?resume ?fault plan ->
          Engine_parallel.run_resumable ?on_hit ?checkpoint ?resume ?fault
            ~domains plan)
  end)

module Native : Engine_intf.S = struct
  let name = "native"
  let plan_based = true
  let run_space ?on_hit space = Engine_native.run_space ?on_hit space
  let run_plan ?on_hit plan = Engine_native.run ?on_hit plan
  let resumable = None
end

let default_native_threads = 1

let native threads : (module Engine_intf.S) =
  if threads < 1 then invalid_arg "Engine_registry.native: threads < 1";
  (module struct
    let name = Printf.sprintf "native-%d" threads
    let plan_based = true

    let run_space ?on_hit space =
      Engine_native.run_space ?on_hit ~threads space

    let run_plan ?on_hit plan = Engine_native.run ?on_hit ~threads plan
    let resumable = None
  end)

(* The single source of truth for what engines exist: [names] (help
   text, error messages) and the [beast engines] listing both derive
   from it, so neither can drift from [find]. *)
let catalog =
  [
    ( "interp-naive",
      "tree-walking interpreter, nothing hoisted (the paper's \
       scripting-language baseline)" );
    ("interp", "tree-walking interpreter over the hoisted plan");
    ("vm", "bytecode compiler + stack VM");
    ("staged", "closure-staged compiler (the default)");
    ( "parallel[:DOMAINS]",
      "work-stealing staged sweep across OCaml domains (default 4); the \
       only resumable engine" );
    ( "native[:THREADS]",
      "generated C compiled with $BEAST_CC/cc -O2 and run as a subprocess \
       (default 1 thread)" );
  ]

let names = List.map fst catalog

let find spec : ((module Engine_intf.S), string) result =
  let base, param =
    match String.index_opt spec ':' with
    | None -> (spec, None)
    | Some k ->
      ( String.sub spec 0 k,
        Some (String.sub spec (k + 1) (String.length spec - k - 1)) )
  in
  let fixed m =
    match param with
    | None -> Ok m
    | Some p ->
      Error
        (Printf.sprintf "the %s engine takes no parameter (got %S)" base p)
  in
  match base with
  | "interp-naive" -> fixed (module Interp_naive : Engine_intf.S)
  | "interp" -> fixed (module Interp : Engine_intf.S)
  | "vm" -> fixed (module Vm : Engine_intf.S)
  | "staged" -> fixed (module Staged : Engine_intf.S)
  | "parallel" -> (
    match param with
    | None -> Ok (parallel default_parallel_domains)
    | Some p -> (
      match int_of_string_opt p with
      | Some n when n >= 1 -> Ok (parallel n)
      | Some n ->
        Error (Printf.sprintf "parallel: need at least 1 domain (got %d)" n)
      | None ->
        Error
          (Printf.sprintf "parallel: expected a domain count, got %S" p)))
  | "native" -> (
    match param with
    | None -> Ok (module Native : Engine_intf.S)
    | Some p -> (
      match int_of_string_opt p with
      | Some n when n >= 1 -> Ok (native n)
      | Some n ->
        Error (Printf.sprintf "native: need at least 1 thread (got %d)" n)
      | None ->
        Error (Printf.sprintf "native: expected a thread count, got %S" p)))
  | _ ->
    Error
      (Printf.sprintf "unknown engine %s (try: %s)" spec
         (String.concat ", " names))
