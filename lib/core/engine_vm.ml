(* Bytecode compiler and register VM.

   Register file layout: [0, n_slots) hold the space's iterators and
   derived variables (so opaque bodies can read them through the plan's
   slot lookup); above that, four dedicated registers per loop
   (step, trip count, index, scratch test) and a scratch region reused by
   expression evaluation. Jump operands are label ids during compilation
   and absolute addresses after [resolve].

   Instrumentation (Beast_obs) is a compile-time decision: with
   [~instrument:true] the compiler interleaves dedicated bookkeeping
   instructions (Iobs/Itic/Itoc/Iltic/Iltoc); an uninstrumented program
   contains none of them, so tracing costs nothing when off. *)

open Beast_obs

type instr =
  | Iconst of int * int
  | Imove of int * int
  | Ibin of Expr.binop * int * int * int
  | Ineg of int * int
  | Inot of int * int
  | Imin of int * int * int
  | Imax of int * int * int
  | Iabs of int * int
  | Iceil of int * int * int
  | Icall of int * int  (* dst <- funs.(fid) regs *)
  | Ijmp of int
  | Ijz of int * int
  | Ijnz of int * int
  | Iinc of int
  | Itrip of int * int * int * int  (* dst <- trip count of (start stop step) regs *)
  | Iprune of int * int  (* count constraint, jump to loop continuation *)
  | Isprune of int * int  (* replay dead-value table #id at depth d *)
  | Ihit
  | Iiters
  | Imat of int * int  (* arrays.(aid) <- iterfuns.(iid) regs *)
  | Ilen of int * int  (* dst <- length arrays.(aid) *)
  | Ild of int * int * int  (* dst <- arrays.(aid).(regs.(idx)) *)
  | Iobs of int  (* count a loop entry at depth d; sample throughput *)
  | Itic  (* start the constraint-evaluation stopwatch *)
  | Itoc of int  (* charge the stopwatch to constraint c *)
  | Iltic of int  (* start the level stopwatch for depth d *)
  | Iltoc of int  (* charge the level stopwatch to depth d *)
  | Ihalt

type program = {
  prog_plan : Plan.t;
  code : instr array;
  n_regs : int;
  funs : (int array -> int) array;
  iterfuns : (int array -> int array) array;
  static_arrays : (int * int array) list;  (* array id -> contents *)
  n_arrays : int;
  sprunes : (int * (int * int) array * (int * int) array) array;
      (* table id -> (slot, dead values, aggregated (c_index, fired)) *)
  instrumented : bool;
}

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type asm = {
  mutable instrs : instr array;
  mutable n : int;
  mutable labels : int array;
  mutable n_labels : int;
  mutable max_reg : int;
}

let new_asm () =
  { instrs = Array.make 64 Ihalt; n = 0; labels = Array.make 16 (-1);
    n_labels = 0; max_reg = 0 }

let emit a i =
  if a.n = Array.length a.instrs then begin
    let bigger = Array.make (2 * a.n) Ihalt in
    Array.blit a.instrs 0 bigger 0 a.n;
    a.instrs <- bigger
  end;
  a.instrs.(a.n) <- i;
  a.n <- a.n + 1

let new_label a =
  if a.n_labels = Array.length a.labels then begin
    let bigger = Array.make (2 * a.n_labels) (-1) in
    Array.blit a.labels 0 bigger 0 a.n_labels;
    a.labels <- bigger
  end;
  let l = a.n_labels in
  a.n_labels <- l + 1;
  l

let mark a l = a.labels.(l) <- a.n

let touch a r = if r > a.max_reg then a.max_reg <- r

let resolve a =
  let addr l =
    let x = a.labels.(l) in
    if x < 0 then invalid_arg "Engine_vm: unmarked label";
    x
  in
  Array.init a.n (fun i ->
      match a.instrs.(i) with
      | Ijmp l -> Ijmp (addr l)
      | Ijz (r, l) -> Ijz (r, addr l)
      | Ijnz (r, l) -> Ijnz (r, addr l)
      | Iprune (c, l) -> Iprune (c, addr l)
      | other -> other)

let compile ?(instrument = false) (plan : Plan.t) =
  let a = new_asm () in
  let n_slots = max 1 plan.Plan.n_slots in
  touch a (n_slots - 1);
  let n_loops = List.length plan.Plan.iter_order in
  (* Four persistent registers per loop above the slots. *)
  let loop_reg_base = n_slots in
  let scratch_base = loop_reg_base + (4 * n_loops) in
  let funs = ref [] and n_funs = ref 0 in
  let iterfuns = ref [] and n_iterfuns = ref 0 in
  let static_arrays = ref [] and n_arrays = ref 0 in
  let add_fun f =
    let id = !n_funs in
    incr n_funs;
    funs := f :: !funs;
    id
  in
  let add_iterfun f =
    let id = !n_iterfuns in
    incr n_iterfuns;
    iterfuns := f :: !iterfuns;
    id
  in
  let add_array contents =
    let id = !n_arrays in
    incr n_arrays;
    (match contents with
    | Some vs -> static_arrays := (id, vs) :: !static_arrays
    | None -> ());
    id
  in
  let sprunes = ref [] and n_sprunes = ref 0 in
  let add_sprune slot dead =
    let id = !n_sprunes in
    incr n_sprunes;
    sprunes := (slot, dead, Plan.static_prune_counts dead) :: !sprunes;
    id
  in
  (* Compile an expression so its value lands in [dst]; [tmp] is the first
     free scratch register. *)
  let rec compile_expr (e : Plan.cexpr) dst tmp =
    touch a dst;
    touch a tmp;
    match e with
    | CLit k -> emit a (Iconst (dst, k))
    | CSlot i -> if i <> dst then emit a (Imove (dst, i))
    | CUn (Neg, x) ->
      compile_expr x dst tmp;
      emit a (Ineg (dst, dst))
    | CUn (Not, x) ->
      compile_expr x dst tmp;
      emit a (Inot (dst, dst))
    | CBin (And, x, y) ->
      let l_false = new_label a and l_end = new_label a in
      compile_expr x dst tmp;
      emit a (Ijz (dst, l_false));
      compile_expr y dst tmp;
      emit a (Ijz (dst, l_false));
      emit a (Iconst (dst, 1));
      emit a (Ijmp l_end);
      mark a l_false;
      emit a (Iconst (dst, 0));
      mark a l_end
    | CBin (Or, x, y) ->
      let l_true = new_label a and l_end = new_label a in
      compile_expr x dst tmp;
      emit a (Ijnz (dst, l_true));
      compile_expr y dst tmp;
      emit a (Ijnz (dst, l_true));
      emit a (Iconst (dst, 0));
      emit a (Ijmp l_end);
      mark a l_true;
      emit a (Iconst (dst, 1));
      mark a l_end
    | CBin (op, x, y) ->
      compile_expr x dst tmp;
      compile_expr y tmp (tmp + 1);
      emit a (Ibin (op, dst, dst, tmp))
    | CIf (c, t, f) ->
      let l_else = new_label a and l_end = new_label a in
      compile_expr c dst tmp;
      emit a (Ijz (dst, l_else));
      compile_expr t dst tmp;
      emit a (Ijmp l_end);
      mark a l_else;
      compile_expr f dst tmp;
      mark a l_end
    | CCall (Min, [ x; y ]) ->
      compile_expr x dst tmp;
      compile_expr y tmp (tmp + 1);
      emit a (Imin (dst, dst, tmp))
    | CCall (Max, [ x; y ]) ->
      compile_expr x dst tmp;
      compile_expr y tmp (tmp + 1);
      emit a (Imax (dst, dst, tmp))
    | CCall (Abs, [ x ]) ->
      compile_expr x dst tmp;
      emit a (Iabs (dst, dst))
    | CCall (Ceil_div, [ x; y ]) ->
      compile_expr x dst tmp;
      compile_expr y tmp (tmp + 1);
      emit a (Iceil (dst, dst, tmp))
    | CCall _ -> invalid_arg "Engine_vm: malformed builtin call"
  in
  let compile_compute compute dst =
    match (compute : Plan.compute) with
    | CE e -> compile_expr e dst (scratch_base + 1)
    | CF f -> emit a (Icall (add_fun f, dst))
  in
  (* [depth] indexes the per-loop register block; [cont] is the label a
     firing constraint jumps to (continuation of the innermost loop, or
     the end of the program at depth 0). *)
  let rec compile_steps steps ~depth ~cont =
    match (steps : Plan.step list) with
    | [] -> ()
    | Yield :: rest ->
      emit a Ihit;
      compile_steps rest ~depth ~cont
    | Derive { d_slot; d_compute; _ } :: rest ->
      compile_compute d_compute d_slot;
      compile_steps rest ~depth ~cont
    | Check { c_index; c_compute; _ } :: rest ->
      let r = scratch_base in
      touch a r;
      if instrument then emit a Itic;
      compile_compute c_compute r;
      if instrument then emit a (Itoc c_index);
      let l_pass = new_label a in
      emit a (Ijz (r, l_pass));
      emit a (Iprune (c_index, cont));
      mark a l_pass;
      compile_steps rest ~depth ~cont
    | Static_prune { sp_slot; sp_dead; _ } :: rest ->
      emit a (Isprune (add_sprune sp_slot sp_dead, depth));
      compile_steps rest ~depth ~cont
    | Loop { l_slot; l_iter; l_body; _ } :: rest ->
      let base = loop_reg_base + (4 * depth) in
      let r_step = base and r_n = base + 1 and r_i = base + 2 and r_t = base + 3 in
      touch a r_t;
      let l_test = new_label a
      and l_cont = new_label a
      and l_exit = new_label a in
      if instrument then emit a (Iltic depth);
      (match l_iter with
      | CRange (start, stop, step) ->
        (* var <- start; step/trip in loop registers; index counts 0..n. *)
        compile_expr start l_slot (scratch_base + 1);
        compile_expr stop r_n (scratch_base + 1);
        compile_expr step r_step (scratch_base + 1);
        emit a (Itrip (r_n, l_slot, r_n, r_step));
        emit a (Iconst (r_i, 0));
        mark a l_test;
        emit a (Ibin (Lt, r_t, r_i, r_n));
        emit a (Ijz (r_t, l_exit));
        emit a Iiters;
        if instrument then emit a (Iobs depth);
        compile_steps l_body ~depth:(depth + 1) ~cont:l_cont;
        mark a l_cont;
        emit a (Ibin (Add, l_slot, l_slot, r_step));
        emit a (Iinc r_i);
        emit a (Ijmp l_test)
      | CValues _ | CDyn _ ->
        let aid, mat =
          match l_iter with
          | CValues vs -> (add_array (Some vs), None)
          | CDyn f -> (add_array None, Some (add_iterfun f))
          | CRange _ -> assert false
        in
        (match mat with
        | Some iid -> emit a (Imat (aid, iid))
        | None -> ());
        emit a (Ilen (r_n, aid));
        emit a (Iconst (r_i, 0));
        mark a l_test;
        emit a (Ibin (Lt, r_t, r_i, r_n));
        emit a (Ijz (r_t, l_exit));
        emit a (Ild (l_slot, aid, r_i));
        emit a Iiters;
        if instrument then emit a (Iobs depth);
        compile_steps l_body ~depth:(depth + 1) ~cont:l_cont;
        mark a l_cont;
        emit a (Iinc r_i);
        emit a (Ijmp l_test));
      mark a l_exit;
      if instrument then emit a (Iltoc depth);
      compile_steps rest ~depth ~cont
  in
  let l_end = new_label a in
  compile_steps plan.Plan.steps ~depth:0 ~cont:l_end;
  mark a l_end;
  emit a Ihalt;
  {
    prog_plan = plan;
    code = resolve a;
    n_regs = a.max_reg + 1;
    funs = Array.of_list (List.rev !funs);
    iterfuns = Array.of_list (List.rev !iterfuns);
    static_arrays = !static_arrays;
    n_arrays = max 1 !n_arrays;
    sprunes = Array.of_list (List.rev !sprunes);
    instrumented = instrument;
  }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let run ?on_hit (p : program) =
  let plan = p.prog_plan in
  let regs = Array.make p.n_regs 0 in
  (* Registers [0, n_slots) ARE the plan's slots, so the provenance
     accumulator reads them directly. Resolved to no-op closures when no
     collector is installed; per-depth entries need an instrumented
     program ({!run_plan} selects one whenever provenance is on). *)
  let prov = Provenance.current () in
  let plocal =
    Option.map (fun _ -> Provenance.local_of (Provenance.attribution plan)) prov
  in
  let prov_fire, prov_hit =
    match plocal with
    | None -> ((fun _ -> ()), fun () -> ())
    | Some pl ->
      ( (fun c -> Provenance.fire pl regs c),
        fun () -> Provenance.hit pl regs )
  in
  let arrays = Array.make p.n_arrays [||] in
  List.iter (fun (aid, vs) -> arrays.(aid) <- vs) p.static_arrays;
  let n_constraints = Array.length plan.Plan.constraint_info in
  let pruned = Array.make n_constraints 0 in
  let survivors = ref 0 in
  let loop_iterations = ref 0 in
  (* Instrumentation state; only touched by instructions that exist in
     instrumented programs. The VM cannot cheaply track its position in
     the outermost loop, so progress ticks report frac = -1 (unknown). *)
  let n_loops = max 1 (List.length plan.Plan.iter_order) in
  let check_time = Array.make (max 1 n_constraints) 0 in
  let depth_entries = Array.make n_loops 0 in
  let level_time = Array.make n_loops 0 in
  let lstart = Array.make n_loops 0 in
  let tic = ref 0 in
  let sampler = Engine.make_sampler () in
  let hit =
    match on_hit with
    | None -> fun () -> incr survivors
    | Some f ->
      let lookup = Plan.lookup_of_slots plan regs in
      fun () ->
        incr survivors;
        f lookup
  in
  let code = p.code in
  let pc = ref 0 in
  let running = ref true in
  let dispatch () =
    while !running do
      match code.(!pc) with
    | Iconst (d, k) ->
      regs.(d) <- k;
      incr pc
    | Imove (d, s) ->
      regs.(d) <- regs.(s);
      incr pc
    | Ibin (op, d, x, y) ->
      regs.(d) <- Plan.eval_int_binop op regs.(x) regs.(y);
      incr pc
    | Ineg (d, x) ->
      regs.(d) <- -regs.(x);
      incr pc
    | Inot (d, x) ->
      regs.(d) <- (if regs.(x) = 0 then 1 else 0);
      incr pc
    | Imin (d, x, y) ->
      regs.(d) <- min regs.(x) regs.(y);
      incr pc
    | Imax (d, x, y) ->
      regs.(d) <- max regs.(x) regs.(y);
      incr pc
    | Iabs (d, x) ->
      regs.(d) <- abs regs.(x);
      incr pc
    | Iceil (d, x, y) ->
      let dv = regs.(y) in
      if dv = 0 then raise Division_by_zero;
      regs.(d) <- (regs.(x) + dv - 1) / dv;
      incr pc
    | Icall (fid, d) ->
      regs.(d) <- p.funs.(fid) regs;
      incr pc
    | Ijmp t -> pc := t
    | Ijz (r, t) -> if regs.(r) = 0 then pc := t else incr pc
    | Ijnz (r, t) -> if regs.(r) <> 0 then pc := t else incr pc
    | Iinc r ->
      regs.(r) <- regs.(r) + 1;
      incr pc
    | Itrip (d, s, e, st) ->
      let start = regs.(s) and stop = regs.(e) and step = regs.(st) in
      if step = 0 then raise (Expr.Eval_error "Engine_vm: zero range step");
      regs.(d) <- Plan.trip_count ~start ~stop ~step;
      incr pc
    | Iprune (c, t) ->
      pruned.(c) <- pruned.(c) + 1;
      prov_fire c;
      pc := t
    | Isprune (id, depth) ->
      let slot, dead, counts = p.sprunes.(id) in
      let n = Array.length dead in
      loop_iterations := !loop_iterations + n;
      if p.instrumented then depth_entries.(depth) <- depth_entries.(depth) + n;
      (match plocal with
      | None ->
        Array.iter (fun (c, m) -> pruned.(c) <- pruned.(c) + m) counts
      | Some pl ->
        Array.iter
          (fun (v, c) ->
            pruned.(c) <- pruned.(c) + 1;
            Provenance.static_fire pl regs ~slot ~value:v c)
          dead);
      incr pc
    | Ihit ->
      hit ();
      prov_hit ();
      incr pc
    | Iiters ->
      incr loop_iterations;
      incr pc
    | Imat (aid, iid) ->
      arrays.(aid) <- p.iterfuns.(iid) regs;
      incr pc
    | Ilen (d, aid) ->
      regs.(d) <- Array.length arrays.(aid);
      incr pc
    | Ild (d, aid, i) ->
      regs.(d) <- arrays.(aid).(regs.(i));
      incr pc
    | Iobs d ->
      depth_entries.(d) <- depth_entries.(d) + 1;
      if !loop_iterations land Engine.sample_mask = 0 then
        Engine.sample sampler ~points:!loop_iterations ~survivors:!survivors
          ~frac:(-1.0);
      incr pc
    | Itic ->
      tic := Clock.now_ns ();
      incr pc
    | Itoc c ->
      check_time.(c) <- check_time.(c) + (Clock.now_ns () - !tic);
      incr pc
    | Iltic d ->
      lstart.(d) <- Clock.now_ns ();
      incr pc
    | Iltoc d ->
      level_time.(d) <- level_time.(d) + (Clock.now_ns () - lstart.(d));
      incr pc
    | Ihalt -> running := false
    done
  in
  let t0 = Clock.now_ns () in
  Obs.with_span ~cat:"engine"
    ~args:[ ("space", Obs.Str plan.Plan.space_name) ]
    "sweep:vm" dispatch;
  if p.instrumented then
    Engine.emit_run_aggregates ~t0 plan ~pruned ~check_time ~depth_entries
      ~level_time;
  Obs.progress_tick ~points:!loop_iterations ~survivors:!survivors ~frac:1.0;
  (match (prov, plocal) with
  | Some collector, Some pl -> Provenance.publish collector ~depth_entries pl
  | _ -> ());
  {
    Engine.survivors = !survivors;
    loop_iterations = !loop_iterations;
    pruned =
      Array.mapi (fun i (n, c) -> (n, c, pruned.(i))) plan.Plan.constraint_info;
  }

let run_plan ?on_hit plan =
  run ?on_hit
    (compile
       ~instrument:(Obs.instrumenting () || Provenance.enabled ())
       plan)

let run_space ?on_hit space = run_plan ?on_hit (Plan.make_exn space)

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let instruction_count p = Array.length p.code

let instr_to_string = function
  | Iconst (d, k) -> Printf.sprintf "const   r%d <- %d" d k
  | Imove (d, s) -> Printf.sprintf "move    r%d <- r%d" d s
  | Ibin (op, d, x, y) ->
    Printf.sprintf "bin     r%d <- r%d %s r%d" d x (Expr.binop_symbol op) y
  | Ineg (d, x) -> Printf.sprintf "neg     r%d <- -r%d" d x
  | Inot (d, x) -> Printf.sprintf "not     r%d <- !r%d" d x
  | Imin (d, x, y) -> Printf.sprintf "min     r%d <- min(r%d, r%d)" d x y
  | Imax (d, x, y) -> Printf.sprintf "max     r%d <- max(r%d, r%d)" d x y
  | Iabs (d, x) -> Printf.sprintf "abs     r%d <- |r%d|" d x
  | Iceil (d, x, y) -> Printf.sprintf "ceil    r%d <- ceil(r%d / r%d)" d x y
  | Icall (f, d) -> Printf.sprintf "call    r%d <- fun#%d" d f
  | Ijmp t -> Printf.sprintf "jmp     @%d" t
  | Ijz (r, t) -> Printf.sprintf "jz      r%d @%d" r t
  | Ijnz (r, t) -> Printf.sprintf "jnz     r%d @%d" r t
  | Iinc r -> Printf.sprintf "inc     r%d" r
  | Itrip (d, s, e, st) ->
    Printf.sprintf "trip    r%d <- trip(r%d, r%d, r%d)" d s e st
  | Iprune (c, t) -> Printf.sprintf "prune   #%d @%d" c t
  | Isprune (id, d) -> Printf.sprintf "sprune  tbl%d depth %d" id d
  | Ihit -> "hit"
  | Iiters -> "iters"
  | Imat (a, i) -> Printf.sprintf "mat     arr%d <- iter#%d" a i
  | Ilen (d, a) -> Printf.sprintf "len     r%d <- |arr%d|" d a
  | Ild (d, a, i) -> Printf.sprintf "load    r%d <- arr%d[r%d]" d a i
  | Iobs d -> Printf.sprintf "obs     depth %d" d
  | Itic -> "tic"
  | Itoc c -> Printf.sprintf "toc     #%d" c
  | Iltic d -> Printf.sprintf "ltic    depth %d" d
  | Iltoc d -> Printf.sprintf "ltoc    depth %d" d
  | Ihalt -> "halt"

let disassemble p =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i instr ->
      Buffer.add_string buf (Printf.sprintf "%4d  %s\n" i (instr_to_string instr)))
    p.code;
  Buffer.contents buf
