(** Render single-pass pruning provenance as the [beast explain]
    report.

    Four sections, all computed from one instrumented sweep's
    statistics file (or the merge of a complete shard set):

    - the {e constraint waterfall}: constraints in evaluation order,
      each with its rejection depth, firing count and the exact number
      of full points it removed, plus the running count of points still
      alive after it;
    - {e cost vs selectivity}: when the file also carries metrics, each
      constraint's total evaluation time joined with its removal count;
      adjacent pairs that violate the cheapest-most-selective-first
      ordering (the classic predicate-ordering rule: sort by removals
      per unit cost) are flagged as misplaced;
    - the top-[k] {e dead outer-coordinate ranges}: maximal runs of
      consecutive outermost-iterator values whose subtrees yielded no
      survivor, ranked by how many points were removed under them —
      where a tuner could cut the space wholesale;
    - the per-depth {e survival funnel}: loop entries at each depth and
      the survivor count, with bars.

    The input must carry a ["provenance"] section (sweep with
    [--explain-out]); {!write} returns [Error] with a one-line
    diagnostic otherwise. *)

val write :
  ?top:int -> Format.formatter -> Stats_io.t -> (unit, string) result
(** [write ~top ppf stats] renders the report; [top] bounds the
    dead-range table (default 5). [Error] when [stats] has no
    provenance section, or when its constraint rows disagree with the
    provenance rows (files from different sweeps). *)
