type cexpr =
  | CLit of int
  | CSlot of int
  | CUn of Expr.unop * cexpr
  | CBin of Expr.binop * cexpr * cexpr
  | CIf of cexpr * cexpr * cexpr
  | CCall of Expr.builtin * cexpr list

type compute =
  | CE of cexpr
  | CF of (int array -> int)

type citer =
  | CRange of cexpr * cexpr * cexpr
  | CValues of int array
  | CDyn of (int array -> int array)

type step =
  | Derive of {
      d_name : string;
      d_slot : int;
      d_compute : compute;
    }
  | Check of {
      c_name : string;
      c_class : Space.constraint_class;
      c_index : int;
      c_compute : compute;
    }
  | Loop of {
      l_var : string;
      l_slot : int;
      l_iter : citer;
      l_body : step list;
    }
  | Static_prune of {
      sp_var : string;
      sp_slot : int;
      sp_dead : (int * int) array;
    }
  | Yield

type t = {
  space_name : string;
  steps : step list;
  n_slots : int;
  slot_names : string array;
  iter_order : string list;
  iter_slots : int array;
  constraint_info : (string * Space.constraint_class) array;
  settings : (string * Value.t) list;
  slot_index : (string, int) Hashtbl.t;
}

type error =
  | Space_error of Space.error
  | Unsupported of string

let pp_error ppf = function
  | Space_error e -> Space.pp_error ppf e
  | Unsupported msg -> Format.fprintf ppf "unsupported: %s" msg

exception Error of error

let unsupported fmt = Printf.ksprintf (fun s -> raise (Error (Unsupported s))) fmt

(* ------------------------------------------------------------------ *)
(* cexpr evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let eval_int_binop op a b =
  match (op : Expr.binop) with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then raise Division_by_zero else a / b
  | Mod -> if b = 0 then raise Division_by_zero else a mod b
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | And -> if a <> 0 && b <> 0 then 1 else 0
  | Or -> if a <> 0 || b <> 0 then 1 else 0

let rec eval_cexpr slots e =
  match e with
  | CLit k -> k
  | CSlot i -> slots.(i)
  | CUn (Neg, a) -> -eval_cexpr slots a
  | CUn (Not, a) -> if eval_cexpr slots a = 0 then 1 else 0
  | CBin (And, a, b) ->
    if eval_cexpr slots a = 0 then 0 else if eval_cexpr slots b = 0 then 0 else 1
  | CBin (Or, a, b) ->
    if eval_cexpr slots a <> 0 then 1 else if eval_cexpr slots b <> 0 then 1 else 0
  | CBin (op, a, b) -> eval_int_binop op (eval_cexpr slots a) (eval_cexpr slots b)
  | CIf (c, t, f) ->
    if eval_cexpr slots c <> 0 then eval_cexpr slots t else eval_cexpr slots f
  | CCall (Min, [ a; b ]) -> min (eval_cexpr slots a) (eval_cexpr slots b)
  | CCall (Max, [ a; b ]) -> max (eval_cexpr slots a) (eval_cexpr slots b)
  | CCall (Abs, [ a ]) -> abs (eval_cexpr slots a)
  | CCall (Ceil_div, [ a; b ]) ->
    let d = eval_cexpr slots b in
    if d = 0 then raise Division_by_zero else (eval_cexpr slots a + d - 1) / d
  | CCall _ -> invalid_arg "eval_cexpr: malformed builtin call"

(* Staged twin of [eval_cexpr]: pay the AST walk once, get a closure
   chain to run per evaluation. Worth it anywhere the same bound is
   evaluated many times against different slot states (the staged
   engine compiles its own richer variant; provenance counting
   programs use this one). *)
let rec compile_cexpr e =
  match e with
  | CLit k -> fun _ -> k
  | CSlot i -> fun slots -> slots.(i)
  | CUn (Neg, a) ->
    let a = compile_cexpr a in
    fun slots -> -a slots
  | CUn (Not, a) ->
    let a = compile_cexpr a in
    fun slots -> if a slots = 0 then 1 else 0
  | CBin (And, a, b) ->
    let a = compile_cexpr a and b = compile_cexpr b in
    fun slots -> if a slots = 0 then 0 else if b slots = 0 then 0 else 1
  | CBin (Or, a, b) ->
    let a = compile_cexpr a and b = compile_cexpr b in
    fun slots -> if a slots <> 0 then 1 else if b slots <> 0 then 1 else 0
  | CBin (op, a, b) ->
    let a = compile_cexpr a and b = compile_cexpr b in
    fun slots -> eval_int_binop op (a slots) (b slots)
  | CIf (c, t, f) ->
    let c = compile_cexpr c and t = compile_cexpr t and f = compile_cexpr f in
    fun slots -> if c slots <> 0 then t slots else f slots
  | CCall (Min, [ a; b ]) ->
    let a = compile_cexpr a and b = compile_cexpr b in
    fun slots -> min (a slots) (b slots)
  | CCall (Max, [ a; b ]) ->
    let a = compile_cexpr a and b = compile_cexpr b in
    fun slots -> max (a slots) (b slots)
  | CCall (Abs, [ a ]) ->
    let a = compile_cexpr a in
    fun slots -> abs (a slots)
  | CCall (Ceil_div, [ a; b ]) ->
    let a = compile_cexpr a and b = compile_cexpr b in
    fun slots ->
      let d = b slots in
      if d = 0 then raise Division_by_zero else (a slots + d - 1) / d
  | CCall _ -> invalid_arg "compile_cexpr: malformed builtin call"

module Iset = Set.Make (Int)

let cexpr_slots e =
  let rec go acc = function
    | CLit _ -> acc
    | CSlot i -> Iset.add i acc
    | CUn (_, a) -> go acc a
    | CBin (_, a, b) -> go (go acc a) b
    | CIf (c, t, f) -> go (go (go acc c) t) f
    | CCall (_, args) -> List.fold_left go acc args
  in
  Iset.elements (go Iset.empty e)

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

module Smap = Map.Make (String)

let value_to_cint name v =
  match (v : Value.t) with
  | Int i -> i
  | Bool true -> 1
  | Bool false -> 0
  | Float _ | Str _ ->
    unsupported "%s: non-integer value %s in enumeration path" name
      (Value.to_string v)

let rec lower_expr ~name slot_map e =
  match (e : Expr.t) with
  | Lit v -> CLit (value_to_cint name v)
  | Var x -> (
    match Smap.find_opt x slot_map with
    | Some i -> CSlot i
    | None -> unsupported "%s: variable %s has no slot" name x)
  | Unop (op, a) -> CUn (op, lower_expr ~name slot_map a)
  | Binop (op, a, b) ->
    CBin (op, lower_expr ~name slot_map a, lower_expr ~name slot_map b)
  | If (c, t, f) ->
    CIf
      ( lower_expr ~name slot_map c,
        lower_expr ~name slot_map t,
        lower_expr ~name slot_map f )
  | Call (b, args) -> CCall (b, List.map (lower_expr ~name slot_map) args)

let make_untraced ~hoist ~order space =
  match Space.dag space with
  | Error e -> Result.Error (Space_error e)
  | Ok dag -> (
    try
      let settings = Space.settings space in
      let setting_tbl = Hashtbl.create 16 in
      List.iter (fun (n, v) -> Hashtbl.replace setting_tbl n v) settings;
      let resolve_setting n = Hashtbl.find_opt setting_tbl n in
      let fold e = Expr.simplify (Expr.subst resolve_setting e) in
      let iterators = Space.iterators space in
      let deriveds = Space.deriveds space in
      let constraints = Space.constraints space in
      let iterator_names =
        List.map (fun it -> it.Space.it_name) iterators
      in
      let is_iterator n = List.mem n iterator_names in
      (* Loop order: topological by default, user override if given. *)
      let iter_order =
        match order with
        | None -> List.filter is_iterator (Dag.topo_order dag)
        | Some names ->
          if
            List.sort String.compare names
            <> List.sort String.compare iterator_names
          then
            unsupported "order override must be a permutation of the iterators"
          else names
      in
      let loop_index = Hashtbl.create 16 in
      List.iteri (fun i n -> Hashtbl.replace loop_index n (i + 1)) iter_order;
      let n_loops = List.length iter_order in
      (* Depth of each node: loop index for iterators, max dep depth else. *)
      let depth_memo = Hashtbl.create 64 in
      let rec depth n =
        match Hashtbl.find_opt depth_memo n with
        | Some d -> d
        | None ->
          let d =
            match Hashtbl.find_opt loop_index n with
            | Some i ->
              (* An iterator's bounds must be computable before its loop
                 opens. *)
              List.iter
                (fun dep ->
                  if depth dep >= i then
                    unsupported
                      "iterator %s (loop %d) depends on %s bound at depth %d" n
                      i dep (depth dep))
                (Dag.deps_of dag n);
              i
            | None ->
              List.fold_left (fun acc dep -> max acc (depth dep)) 0
                (Dag.deps_of dag n)
          in
          Hashtbl.replace depth_memo n d;
          d
      in
      List.iter (fun n -> ignore (depth n)) (Dag.nodes dag);
      (* Slots: iterators first (loop order), then derived variables. *)
      let slot_list =
        iter_order @ List.map (fun dv -> dv.Space.dv_name) deriveds
      in
      let slot_map =
        List.fold_left
          (fun (m, i) n -> (Smap.add n i m, i + 1))
          (Smap.empty, 0) slot_list
        |> fst
      in
      let slot_of n = Smap.find n slot_map in
      let n_slots = List.length slot_list in
      let slot_names = Array.of_list slot_list in
      (* Lookup for opaque bodies: settings + bound slots. *)
      let lookup_of_slots slots name =
        match Hashtbl.find_opt setting_tbl name with
        | Some v -> v
        | None -> (
          match Smap.find_opt name slot_map with
          | Some i -> Value.Int slots.(i)
          | None -> raise Not_found)
      in
      let lower_body name = function
        | Space.E e -> CE (lower_expr ~name slot_map (fold e))
        | Space.F { fn; _ } ->
          CF (fun slots -> Value.to_int (fn (lookup_of_slots slots)))
      in
      let static_lookup name =
        match Hashtbl.find_opt setting_tbl name with
        | Some v -> v
        | None -> raise Not_found
      in
      let rec fold_iter (it : Iter.t) : Iter.t =
        match it with
        | Range (a, b, c) -> Range (fold a, fold b, fold c)
        | Values _ | Closure _ -> it
        | Union (x, y) -> Union (fold_iter x, fold_iter y)
        | Inter (x, y) -> Inter (fold_iter x, fold_iter y)
        | Concat (x, y) -> Concat (fold_iter x, fold_iter y)
        | Map (f, x) -> Map (f, fold_iter x)
        | Filter (p, x) -> Filter (p, fold_iter x)
      in
      let iter_is_static it =
        List.for_all (fun d -> Hashtbl.mem setting_tbl d) (Iter.deps it)
      in
      let lower_iter name (it : Iter.t) : citer =
        let it = fold_iter it in
        match it with
        | Range (a, b, c) ->
          CRange
            ( lower_expr ~name slot_map a,
              lower_expr ~name slot_map b,
              lower_expr ~name slot_map c )
        | Values vs ->
          CValues (Array.of_list (List.map (value_to_cint name) vs))
        | Closure _ | Union _ | Inter _ | Concat _ | Map _ | Filter _ ->
          if iter_is_static it then
            CValues
              (Array.map (value_to_cint name) (Iter.materialize static_lookup it))
          else
            CDyn
              (fun slots ->
                Array.map (value_to_cint name)
                  (Iter.materialize (lookup_of_slots slots) it))
      in
      (* Group non-iterator nodes by depth, preserving topological order. *)
      let topo = Dag.topo_order dag in
      let groups = Array.make (n_loops + 1) [] in
      let constraint_info = ref [] in
      let n_constraints = ref 0 in
      let dv_by_name =
        List.fold_left
          (fun m dv -> Smap.add dv.Space.dv_name dv m)
          Smap.empty deriveds
      in
      let cn_by_name =
        List.fold_left
          (fun m cn -> Smap.add cn.Space.cn_name cn m)
          Smap.empty constraints
      in
      List.iter
        (fun n ->
          if not (is_iterator n) then begin
            let d = if hoist then depth n else n_loops in
            let step =
              match Smap.find_opt n dv_by_name with
              | Some dv ->
                Derive
                  {
                    d_name = n;
                    d_slot = slot_of n;
                    d_compute = lower_body n dv.Space.dv_body;
                  }
              | None ->
                let cn = Smap.find n cn_by_name in
                let idx = !n_constraints in
                incr n_constraints;
                constraint_info := (n, cn.Space.cn_class) :: !constraint_info;
                Check
                  {
                    c_name = n;
                    c_class = cn.Space.cn_class;
                    c_index = idx;
                    c_compute = lower_body n cn.Space.cn_body;
                  }
            in
            groups.(d) <- step :: groups.(d)
          end)
        topo;
      Array.iteri (fun i g -> groups.(i) <- List.rev g) groups;
      let iter_arr = Array.of_list iter_order in
      let rec build d =
        let tail =
          if d = n_loops then [ Yield ]
          else
            let var = iter_arr.(d) in
            let it =
              (List.find (fun i -> i.Space.it_name = var) iterators).Space.it_iter
            in
            [
              Loop
                {
                  l_var = var;
                  l_slot = slot_of var;
                  l_iter = lower_iter var it;
                  l_body = build (d + 1);
                };
            ]
        in
        groups.(d) @ tail
      in
      Ok
        {
          space_name = Space.name space;
          steps = build 0;
          n_slots;
          slot_names;
          iter_order;
          iter_slots = Array.map slot_of iter_arr;
          constraint_info = Array.of_list (List.rev !constraint_info);
          settings;
          slot_index =
            (let tbl = Hashtbl.create (2 * n_slots) in
             Smap.iter (fun name slot -> Hashtbl.replace tbl name slot) slot_map;
             tbl);
        }
    with Error err -> Result.Error err)

(* Planning is traced as one span per [make] with a summary instant on
   success, so a Chrome trace shows how long plan construction took
   relative to the sweep it feeds. *)
let make ?(hoist = true) ?order space =
  let module Obs = Beast_obs.Obs in
  Beast_obs.Metrics.time_phase "plan:make" @@ fun () ->
  Obs.with_span ~cat:"plan"
    ~args:[ ("space", Obs.Str (Space.name space)) ]
    "plan:make"
    (fun () ->
      let r = make_untraced ~hoist ~order space in
      (match r with
      | Ok p ->
        Obs.instant ~cat:"plan"
          ~args:
            [
              ("loops", Obs.Int (List.length p.iter_order));
              ("constraints", Obs.Int (Array.length p.constraint_info));
              ("slots", Obs.Int p.n_slots);
            ]
          "plan:built"
      | Error _ -> ());
      r)

let make_exn ?hoist ?order space =
  match make ?hoist ?order space with
  | Ok p -> p
  | Error e -> raise (Error e)

let subsample ~index ~of_ arr =
  let n = Array.length arr in
  let count = if index >= n then 0 else ((n - index - 1) / of_) + 1 in
  Array.init count (fun j -> arr.(index + (j * of_)))

(* A cexpr with no slot reads is a compile-time constant (settings were
   folded during lowering); evaluate it once so chunk bounds stay
   literal in the common case and golden plan dumps remain readable. *)
let static_cexpr e =
  match cexpr_slots e with
  | [] -> ( try Some (eval_cexpr [||] e) with _ -> None)
  | _ :: _ -> None

let trip_count ~start ~stop ~step =
  if step = 0 then 0
  else if step > 0 then max 0 ((stop - start + step - 1) / step)
  else max 0 ((start - stop - step - 1) / -step)

(* Block [index] of [of_] over a trip sequence of length [len]:
   positions [index*len/of_, (index+1)*len/of_). Adjacent blocks tile
   the sequence exactly and differ in size by at most one. *)
let block_bounds ~index ~of_ len =
  (index * len / of_, (index + 1) * len / of_)

let chunk_outer t ~index ~of_ =
  if of_ < 1 || index < 0 || index >= of_ then
    invalid_arg "Plan.chunk_outer: need 0 <= index < of_";
  if of_ = 1 then t
  else
    let chunk_values vs =
      let lo, hi = block_bounds ~index ~of_ (Array.length vs) in
      Array.sub vs lo (hi - lo)
    in
    let chunk_citer = function
      | CValues vs -> CValues (chunk_values vs)
      | CDyn f -> CDyn (fun slots -> chunk_values (f slots))
      | CRange (a, b, c) -> (
        match (static_cexpr a, static_cexpr b, static_cexpr c) with
        | Some a', Some b', Some c' when c' <> 0 ->
          let trip = trip_count ~start:a' ~stop:b' ~step:c' in
          let lo, hi = block_bounds ~index ~of_ trip in
          CRange (CLit (a' + (c' * lo)), CLit (a' + (c' * hi)), CLit c')
        | _ ->
          (* Bounds read depth-0 derived slots: compute the block
             symbolically. The expressions are pure and the outer loop
             header is evaluated once per sweep, so the duplication of
             [a]/[b]/[c] below costs nothing measurable. *)
          let lit k = CLit k in
          let ceil_div x y = CCall (Expr.Ceil_div, [ x; y ]) in
          let clamp0 x = CCall (Expr.Max, [ lit 0; x ]) in
          let trip =
            CIf
              ( CBin (Expr.Eq, c, lit 0),
                lit 0,
                CIf
                  ( CBin (Expr.Gt, c, lit 0),
                    clamp0 (ceil_div (CBin (Expr.Sub, b, a)) c),
                    clamp0
                      (ceil_div (CBin (Expr.Sub, a, b)) (CUn (Expr.Neg, c))) ) )
          in
          let pos k = CBin (Expr.Div, CBin (Expr.Mul, lit k, trip), lit of_) in
          let at p = CBin (Expr.Add, a, CBin (Expr.Mul, c, p)) in
          CRange (at (pos index), at (pos (index + 1)), c))
    in
    let rec chunk_steps = function
      | [] -> if index = 0 then [] else raise Exit
      | Loop l :: rest -> Loop { l with l_iter = chunk_citer l.l_iter } :: rest
      | Static_prune p :: rest ->
        (* The compensation entries for the outer loop's dead values must
           be counted exactly once across the chunk set, so they block-
           decompose alongside the live values. *)
        let lo, hi = block_bounds ~index ~of_ (Array.length p.sp_dead) in
        Static_prune { p with sp_dead = Array.sub p.sp_dead lo (hi - lo) }
        :: chunk_steps rest
      | step :: rest -> step :: chunk_steps rest
    in
    match chunk_steps t.steps with
    | steps -> { t with steps }
    | exception Exit -> { t with steps = [] }

let depth0_constraints t =
  let mask = Array.make (Array.length t.constraint_info) false in
  let rec go = function
    | [] | Loop _ :: _ -> ()
    | Check { c_index; _ } :: rest ->
      mask.(c_index) <- true;
      go rest
    | (Derive _ | Yield | Static_prune _) :: rest -> go rest
  in
  go t.steps;
  mask

let slice_outer t ~index ~of_ =
  if of_ < 1 || index < 0 || index >= of_ then
    invalid_arg "Plan.slice_outer: need 0 <= index < of_";
  if of_ = 1 then t
  else
    let slice_citer = function
      | CRange (a, b, c) ->
        CRange
          ( CBin (Expr.Add, a, CBin (Expr.Mul, CLit index, c)),
            b,
            CBin (Expr.Mul, c, CLit of_) )
      | CValues vs -> CValues (subsample ~index ~of_ vs)
      | CDyn f -> CDyn (fun slots -> subsample ~index ~of_ (f slots))
    in
    let rec slice_steps = function
      | [] -> if index = 0 then [] else raise Exit
      | Loop l :: rest -> Loop { l with l_iter = slice_citer l.l_iter } :: rest
      | Static_prune p :: rest ->
        Static_prune { p with sp_dead = subsample ~index ~of_ p.sp_dead }
        :: slice_steps rest
      | step :: rest -> step :: slice_steps rest
    in
    match slice_steps t.steps with
    | steps -> { t with steps }
    | exception Exit -> { t with steps = [] }

(* ------------------------------------------------------------------ *)
(* Optimization pipeline                                               *)
(* ------------------------------------------------------------------ *)

(* Plan cannot depend on the passes (Propagate sits above it in the
   dependency order), so the pipeline takes them as plain functions. *)
let optimize ?(passes = []) t =
  List.fold_left (fun plan pass -> pass plan) t passes

(* Aggregate a [Static_prune] dead list into per-constraint totals, for
   engines that only need the statistics deltas (one pass at compile
   time instead of one per execution). *)
let static_prune_counts sp_dead =
  let tbl = Hashtbl.create 4 in
  Array.iter
    (fun (_, c) ->
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    sp_dead;
  let pairs = Hashtbl.fold (fun c k acc -> (c, k) :: acc) tbl [] in
  Array.of_list (List.sort compare pairs)

let static_pruned t =
  let rec go acc steps =
    List.fold_left
      (fun acc step ->
        match step with
        | Static_prune { sp_dead; _ } -> acc + Array.length sp_dead
        | Loop { l_body; _ } -> go acc l_body
        | Derive _ | Check _ | Yield -> acc)
      acc steps
  in
  go 0 t.steps

let slot_of t name = Hashtbl.find t.slot_index name

let lookup_of_slots t slots name =
  match Hashtbl.find_opt t.slot_index name with
  | Some slot -> Value.Int slots.(slot)
  | None -> (
    match List.assoc_opt name t.settings with
    | Some v -> v
    | None -> raise Not_found)

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let rec pp_cexpr ppf = function
  | CLit k -> Format.pp_print_int ppf k
  | CSlot i -> Format.fprintf ppf "s%d" i
  | CUn (Neg, a) -> Format.fprintf ppf "(-%a)" pp_cexpr a
  | CUn (Not, a) -> Format.fprintf ppf "(!%a)" pp_cexpr a
  | CBin (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_cexpr a (Expr.binop_symbol op) pp_cexpr b
  | CIf (c, t, f) ->
    Format.fprintf ppf "(%a ? %a : %a)" pp_cexpr c pp_cexpr t pp_cexpr f
  | CCall (b, args) ->
    Format.fprintf ppf "%s(%a)" (Expr.builtin_name b)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_cexpr)
      args

let pp_compute ppf = function
  | CE e -> pp_cexpr ppf e
  | CF _ -> Format.pp_print_string ppf "<fun>"

let pp_citer ppf = function
  | CRange (a, b, c) ->
    Format.fprintf ppf "range(%a, %a, %a)" pp_cexpr a pp_cexpr b pp_cexpr c
  | CValues vs ->
    Format.fprintf ppf "values(%s)"
      (String.concat ", " (Array.to_list (Array.map string_of_int vs)))
  | CDyn _ -> Format.pp_print_string ppf "<dynamic>"

let pp ppf t =
  let rec pp_steps indent steps =
    List.iter
      (fun step ->
        match step with
        | Derive { d_name; d_slot; d_compute } ->
          Format.fprintf ppf "%s%s (s%d) = %a@\n" indent d_name d_slot pp_compute
            d_compute
        | Check { c_name; c_class; c_compute; _ } ->
          Format.fprintf ppf "%sprune if %s [%s]: %a@\n" indent c_name
            (Space.constraint_class_name c_class)
            pp_compute c_compute
        | Loop { l_var; l_slot; l_iter; l_body } ->
          Format.fprintf ppf "%sfor %s (s%d) in %a:@\n" indent l_var l_slot
            pp_citer l_iter;
          pp_steps (indent ^ "  ") l_body
        | Static_prune { sp_var; sp_slot; sp_dead } ->
          let by_constraint = Hashtbl.create 4 in
          Array.iter
            (fun (_, c) ->
              Hashtbl.replace by_constraint c
                (1 + Option.value ~default:0 (Hashtbl.find_opt by_constraint c)))
            sp_dead;
          let parts =
            List.filter_map
              (fun c ->
                Option.map
                  (fun k -> Printf.sprintf "%s:%d" (fst t.constraint_info.(c)) k)
                  (Hashtbl.find_opt by_constraint c))
              (List.init (Array.length t.constraint_info) Fun.id)
          in
          Format.fprintf ppf "%sstatic prune %s (s%d): %d dead [%s]@\n" indent
            sp_var sp_slot (Array.length sp_dead)
            (String.concat ", " parts)
        | Yield -> Format.fprintf ppf "%syield@\n" indent)
      steps
  in
  Format.fprintf ppf "plan %s (%d loops, %d constraints)@\n" t.space_name
    (List.length t.iter_order)
    (Array.length t.constraint_info);
  pp_steps "" t.steps
