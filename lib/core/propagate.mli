(** Constraint-propagation pre-pass over built plans (ROADMAP item 2).

    Tightens each statically-enumerable loop iterator by removing the
    values a hoisted first-order constraint provably rejects for every
    assignment of the surrounding loops, so the nest never enters the
    dead region. Every removed value is recorded in a
    {!Plan.Static_prune} step with the constraint that would have
    rejected it; engines replay those steps as statistics (one loop
    iteration plus one firing per dead value, per enclosing entry),
    which keeps a propagated plan's stats {e byte-identical} to the
    unpropagated run's — the safety rail the equivalence suite pins.

    Decisions are made in monotone interval arithmetic over
    {!Plan.cexpr}: surrounding slots carry the interval hull of their
    (already-tightened) iterators, opaque [CF] bodies and [CDyn]
    iterators poison affected slots to "unknown", and a removal
    additionally requires every earlier Derive/Check in the group to be
    provably raise-free and non-firing. Unknown always means "keep the
    value": the pass can only ever be less effective, never wrong. *)

type interval = { lo : int; hi : int }

val interval_of_cexpr : interval option array -> Plan.cexpr -> interval option
(** Monotone interval evaluation of a lowered expression under per-slot
    bounds ([None] = unknown slot). Returns [None] whenever the result
    cannot be bounded — overflow, a divisor interval containing zero,
    an opaque call. Exposed for tests and for {!Feasible}. *)

val default_sweeps : int
(** Fixpoint sweep cap (the canonical nest converges in one sweep;
    extra sweeps confirm and cost one no-change pass each). *)

val pass : ?sweeps:int -> Plan.t -> Plan.t
(** The pipeline stage: repeatedly sweep the nest, scanning each
    static iterator (up to an enumeration cap of 4M values) against
    its group's checks and splitting it into surviving values (kept in
    trip order, re-encoded as a literal range when they form an
    arithmetic progression) plus a {!Plan.Static_prune} record of the
    dead ones, until a sweep changes nothing or [sweeps] is reached.
    Plans with nothing statically removable are returned unchanged. *)
