open Beast_core
open Beast_obs

type candidate = {
  score : float;
  slots : int array;
  bindings : (string * Value.t) list;
}

let eval_count = ref 0
let evaluations () = !eval_count
let reset_counters () = eval_count := 0

let eval_compute slots = function
  | Plan.CE e -> Plan.eval_cexpr slots e
  | Plan.CF f -> f slots

let materialize_citer slots = function
  | Plan.CRange (a, b, c) ->
    let start = Plan.eval_cexpr slots a
    and stop = Plan.eval_cexpr slots b
    and step = Plan.eval_cexpr slots c in
    if step = 0 then raise (Expr.Eval_error "Search: zero range step");
    let n =
      if step > 0 then max 0 ((stop - start + step - 1) / step)
      else max 0 ((start - stop - step - 1) / -step)
    in
    Array.init n (fun i -> start + (i * step))
  | Plan.CValues vs -> vs
  | Plan.CDyn f -> f slots

(* Walk the nest once with a value-chooser per loop. [choose slot values]
   returns the index to take. Returns false when a constraint fires or a
   loop is empty. *)
let rec walk ~choose slots (steps : Plan.step list) =
  match steps with
  | [] -> true
  | Plan.Yield :: rest -> walk ~choose slots rest
  | Plan.Derive { d_slot; d_compute; _ } :: rest ->
    slots.(d_slot) <- eval_compute slots d_compute;
    walk ~choose slots rest
  | Plan.Check { c_compute; _ } :: rest ->
    if eval_compute slots c_compute <> 0 then false
    else walk ~choose slots rest
  (* Dead-value bookkeeping, not part of the live nest: skip. *)
  | Plan.Static_prune _ :: rest -> walk ~choose slots rest
  | Plan.Loop { l_slot; l_iter; l_body; _ } :: rest ->
    let vs = materialize_citer slots l_iter in
    if Array.length vs = 0 then false
    else begin
      slots.(l_slot) <- vs.(choose l_slot vs);
      walk ~choose slots l_body && walk ~choose slots rest
    end

(* Drawing a point by independent uniform choices per dimension almost
   never survives exact-divisibility constraints (the GEMM reshape
   constraints accept ~1 in 10^6 raw draws), so sampling is a randomized
   backtracking DFS: at each loop the values are visited in random order
   and a constraint failure backtracks to the nearest choice point.
   [max_tries] bounds the total number of value bindings explored. This
   is biased toward survivors in sparse subtrees — acceptable for the
   heuristic searches below and documented in the interface. *)
let sample ?rng ?(max_tries = 1000) (plan : Plan.t) =
  let rng =
    match rng with
    | Some r -> r
    | None -> Random.State.make_self_init ()
  in
  let slots = Array.make (max 1 plan.Plan.n_slots) 0 in
  let budget = ref (max_tries * 100) in
  let exception Out_of_budget in
  let shuffle_in_place a =
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done
  in
  let rec dfs (steps : Plan.step list) =
    match steps with
    | [] -> true
    | Plan.Yield :: rest -> dfs rest
    | Plan.Derive { d_slot; d_compute; _ } :: rest ->
      slots.(d_slot) <- eval_compute slots d_compute;
      dfs rest
    | Plan.Check { c_compute; _ } :: rest ->
      eval_compute slots c_compute = 0 && dfs rest
    | Plan.Static_prune _ :: rest -> dfs rest
    | Plan.Loop { l_slot; l_iter; l_body; _ } :: rest ->
      let vs = Array.copy (materialize_citer slots l_iter) in
      shuffle_in_place vs;
      let n = Array.length vs in
      let rec try_values i =
        if i >= n then false
        else begin
          decr budget;
          if !budget <= 0 then raise Out_of_budget;
          slots.(l_slot) <- vs.(i);
          (dfs l_body && dfs rest) || try_values (i + 1)
        end
      in
      try_values 0
  in
  match dfs plan.Plan.steps with
  | true -> Some slots
  | false -> None
  | exception Out_of_budget -> None

let candidate_of plan ~objective slots =
  let lookup = Plan.lookup_of_slots plan slots in
  incr eval_count;
  {
    score = objective lookup;
    slots;
    bindings =
      List.map (fun n -> (n, lookup n)) plan.Plan.iter_order;
  }

let better a b =
  match a, b with
  | None, x | x, None -> x
  | Some x, Some y -> if x.score >= y.score then Some x else Some y

let random_search ?rng ?max_tries ~budget ~objective plan =
  let rng =
    match rng with
    | Some r -> r
    | None -> Random.State.make_self_init ()
  in
  (* A failed draw (budget exhausted inside a survivor-free subtree) is
     not fatal; give up only after many consecutive failures. *)
  let rec go best remaining failures =
    if remaining = 0 || failures > 50 then best
    else
      match sample ~rng ?max_tries plan with
      | None -> go best remaining (failures + 1)
      | Some slots ->
        let cand = candidate_of plan ~objective slots in
        Obs.instant ~cat:"tune"
          ~args:[ ("score", Obs.Float cand.score) ]
          "search:eval";
        go (better best (Some cand)) (remaining - 1) 0
  in
  Obs.with_span ~cat:"tune"
    ~args:[ ("budget", Obs.Int budget) ]
    "search:random"
    (fun () -> go None budget 0)

(* Re-walk the nest pinning each loop as close as possible to [target]:
   pick the value of the (dependent) range nearest the target. Used to
   revalidate a perturbed point: outer changes reshape inner ranges, and
   every hoisted constraint re-fires if violated. *)
let clamp_walk plan targets =
  let slots = Array.make (max 1 plan.Plan.n_slots) 0 in
  let choose slot vs =
    let target = targets.(slot) in
    let best = ref 0 and best_d = ref max_int in
    Array.iteri
      (fun i v ->
        let d = abs (v - target) in
        if d < !best_d then begin
          best := i;
          best_d := d
        end)
      vs;
    !best
  in
  if walk ~choose slots plan.Plan.steps then Some slots else None

let hill_climb ?rng ?(restarts = 5) ?(steps = 200) ~objective (plan : Plan.t) =
  let rng =
    match rng with
    | Some r -> r
    | None -> Random.State.make_self_init ()
  in
  let n_loops = Array.length plan.Plan.iter_slots in
  let climb_once () =
    match sample ~rng plan with
    | None -> None
    | Some slots ->
      let current = ref (candidate_of plan ~objective slots) in
      for _ = 1 to steps do
        if n_loops > 0 then begin
          let dim = plan.Plan.iter_slots.(Random.State.int rng n_loops) in
          let delta = if Random.State.bool rng then 1 else -1 in
          let targets = Array.copy !current.slots in
          (* Nudge one dimension; magnitude scales with its value so big
             ranges move in useful increments. *)
          let step = max 1 (abs targets.(dim) / 8) in
          targets.(dim) <- targets.(dim) + (delta * step);
          match clamp_walk plan targets with
          | None -> ()
          | Some slots' ->
            if slots' <> !current.slots then begin
              let cand = candidate_of plan ~objective slots' in
              if cand.score > !current.score then current := cand
            end
        end
      done;
      Some !current
  in
  let rec go best remaining =
    if remaining = 0 then best
    else
      let attempt =
        Obs.with_span ~cat:"tune"
          ~args:[ ("restart", Obs.Int (restarts - remaining)) ]
          "search:climb" climb_once
      in
      go (better best attempt) (remaining - 1)
  in
  go None restarts
