open Beast_core
open Beast_obs

type candidate = {
  score : float;
  bindings : (string * Value.t) list;
}

type result = {
  best : candidate option;
  top : candidate list;
  evaluated : int;
  stats : Engine.stats;
  elapsed_s : float;
}

(* Insert into a best-first list capped at [n]; n is small (default 10),
   so linear insertion is fine even for hundreds of thousands of
   survivors. *)
let insert_top n candidate top =
  let rec go = function
    | [] -> [ candidate ]
    | c :: rest ->
      if candidate.score > c.score then candidate :: c :: rest
      else c :: go rest
  in
  let inserted = go top in
  if List.length inserted > n then List.filteri (fun i _ -> i < n) inserted
  else inserted

let tune ?engine ?(top_n = 10) ~objective space =
  let plan = Plan.make_exn space in
  let iter_order = plan.Plan.iter_order in
  let mutex = Mutex.create () in
  let top = ref [] in
  let evaluated = ref 0 in
  let worst_of top =
    match top with
    | [] -> neg_infinity
    | _ -> (List.nth top (List.length top - 1)).score
  in
  let on_hit lookup =
    let score = objective lookup in
    Mutex.lock mutex;
    incr evaluated;
    if List.length !top < top_n || score > worst_of !top then begin
      let bindings = List.map (fun n -> (n, lookup n)) iter_order in
      top := insert_top top_n { score; bindings } !top;
      Obs.instant ~cat:"tune" ~args:[ ("score", Obs.Float score) ] "candidate"
    end;
    Mutex.unlock mutex
  in
  (* Monotonic clock: wall-clock adjustments (NTP slew, DST) must not
     distort the reported tuning time. *)
  let t0 = Clock.now_ns () in
  let stats =
    Obs.with_span ~cat:"tune"
      ~args:[ ("space", Obs.Str (Space.name space)) ]
      "tune"
      (fun () -> Sweep.run ?engine ~on_hit space)
  in
  let elapsed_s = Clock.elapsed_s ~since:t0 in
  let top = !top in
  {
    best =
      (match top with
      | [] -> None
      | c :: _ -> Some c);
    top;
    evaluated = !evaluated;
    stats;
    elapsed_s;
  }

let improvement result ~baseline =
  match result.best with
  | None -> None
  | Some c ->
    if baseline <= 0.0 then None else Some (c.score /. baseline)

type bi_candidate = {
  bi_scores : float * float;
  bi_bindings : (string * Value.t) list;
}

let dominates (a1, a2) (b1, b2) =
  a1 >= b1 && a2 >= b2 && (a1 > b1 || a2 > b2)

let pareto ?engine ?(max_front = 64) ~objectives space =
  let f1, f2 = objectives in
  let plan = Plan.make_exn space in
  let iter_order = plan.Plan.iter_order in
  let mutex = Mutex.create () in
  let front = ref [] in
  let on_hit lookup =
    let scores = (f1 lookup, f2 lookup) in
    Mutex.lock mutex;
    let dominated =
      List.exists
        (fun c -> dominates c.bi_scores scores || c.bi_scores = scores)
        !front
    in
    if not dominated then begin
      let bindings = List.map (fun n -> (n, lookup n)) iter_order in
      front :=
        { bi_scores = scores; bi_bindings = bindings }
        :: List.filter (fun c -> not (dominates scores c.bi_scores)) !front
    end;
    Mutex.unlock mutex
  in
  ignore
    (Obs.with_span ~cat:"tune"
       ~args:[ ("space", Obs.Str (Space.name space)) ]
       "pareto"
       (fun () -> Sweep.run ?engine ~on_hit space));
  let sorted =
    List.sort
      (fun a b -> compare (fst b.bi_scores) (fst a.bi_scores))
      !front
  in
  if List.length sorted <= max_front then sorted
  else begin
    (* Keep the extremes and an even subsample of the interior. *)
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    List.init max_front (fun i -> arr.(i * (n - 1) / (max_front - 1)))
  end

let pp_result ?peak ppf r =
  Format.fprintf ppf
    "tuned %d survivors in %.2fs (%d loop iterations, %d pruned)@\n"
    r.evaluated r.elapsed_s r.stats.Engine.loop_iterations
    (Engine.total_pruned r.stats);
  List.iteri
    (fun i c ->
      Format.fprintf ppf "  #%-2d score %10.2f" (i + 1) c.score;
      (match peak with
      | Some p when p > 0.0 ->
        Format.fprintf ppf " (%5.1f%% of peak)" (100.0 *. c.score /. p)
      | _ -> ());
      List.iter
        (fun (n, v) -> Format.fprintf ppf " %s=%s" n (Value.to_string v))
        c.bindings;
      Format.fprintf ppf "@\n")
    r.top
