open Beast_core
open Beast_obs

type candidate = {
  score : float;
  bindings : (string * Value.t) list;
}

type result = {
  best : candidate option;
  top : candidate list;
  evaluated : int;
  failed : int;
  stats : Engine.stats;
  elapsed_s : float;
}

(* Insert into a best-first list capped at [n]; n is small (default 10),
   so linear insertion is fine even for hundreds of thousands of
   survivors. *)
let insert_top n candidate top =
  let rec go = function
    | [] -> [ candidate ]
    | c :: rest ->
      if candidate.score > c.score then candidate :: c :: rest
      else c :: go rest
  in
  let inserted = go top in
  if List.length inserted > n then List.filteri (fun i _ -> i < n) inserted
  else inserted

exception Benchmark_timeout

(* SIGALRM-based wall-clock guard around one objective call. The engines
   serialize survivor callbacks behind a global mutex, so at most one
   timer is armed at a time even under the parallel scheduler; delivery
   to a worker domain is best-effort (see the .mli), which is why the
   CLI pairs --timeout with the sequential default engine. *)
let with_timeout timeout_s f =
  match timeout_s with
  | None -> f ()
  | Some secs ->
    let previous =
      Sys.signal Sys.sigalrm
        (Sys.Signal_handle (fun _ -> raise Benchmark_timeout))
    in
    let arm v =
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_interval = 0.0; it_value = v })
    in
    Fun.protect
      ~finally:(fun () ->
        arm 0.0;
        Sys.set_signal Sys.sigalrm previous)
      (fun () ->
        arm secs;
        f ())

(* Retry-with-backoff around a failing (raising or timing-out)
   objective: a pathological configuration is skipped after
   [retries + 1] attempts instead of wedging the whole campaign. *)
let guarded ~timeout_s ~retries ~backoff_s ~on_retry objective lookup =
  let rec attempt k =
    match with_timeout timeout_s (fun () -> objective lookup) with
    | score -> Some score
    | exception e ->
      Obs.instant ~cat:"tune"
        ~args:
          [
            ("attempt", Obs.Int k); ("error", Obs.Str (Printexc.to_string e));
          ]
        "benchmark:fail";
      if k < retries then begin
        on_retry ();
        Unix.sleepf (backoff_s *. (2.0 ** float_of_int k));
        attempt (k + 1)
      end
      else None
  in
  attempt 0

let default_engine : (module Engine_intf.S) = (module Engine_registry.Staged)

let tune ?(engine = default_engine) ?(top_n = 10) ?timeout_s ?(retries = 1)
    ?(backoff_s = 0.05) ~objective space =
  if retries < 0 then invalid_arg "Tuner.tune: retries < 0";
  if backoff_s < 0.0 then invalid_arg "Tuner.tune: backoff_s < 0";
  let (module E : Engine_intf.S) = engine in
  let plan = Plan.make_exn space in
  let iter_order = plan.Plan.iter_order in
  let mutex = Mutex.create () in
  let top = ref [] in
  let evaluated = ref 0 in
  let failed = ref 0 in
  let fail_counter, retry_counter =
    match Metrics.current () with
    | None -> (None, None)
    | Some r ->
      let mk name =
        Some (Metrics.counter r ~name ~labels:[ ("space", Space.name space) ] ())
      in
      (mk "benchmark_failures_total", mk "benchmark_retries_total")
  in
  let worst_of top =
    match top with
    | [] -> neg_infinity
    | _ -> (List.nth top (List.length top - 1)).score
  in
  let on_hit lookup =
    match
      guarded ~timeout_s ~retries ~backoff_s
        ~on_retry:(fun () -> Option.iter Metrics.incr retry_counter)
        objective lookup
    with
    | None ->
      Mutex.lock mutex;
      incr failed;
      Mutex.unlock mutex;
      Option.iter Metrics.incr fail_counter
    | Some score ->
      Mutex.lock mutex;
      incr evaluated;
      if List.length !top < top_n || score > worst_of !top then begin
        let bindings = List.map (fun n -> (n, lookup n)) iter_order in
        top := insert_top top_n { score; bindings } !top;
        Obs.instant ~cat:"tune" ~args:[ ("score", Obs.Float score) ] "candidate"
      end;
      Mutex.unlock mutex
  in
  (* Monotonic clock: wall-clock adjustments (NTP slew, DST) must not
     distort the reported tuning time. *)
  let t0 = Clock.now_ns () in
  let stats =
    Obs.with_span ~cat:"tune"
      ~args:[ ("space", Obs.Str (Space.name space)) ]
      "tune"
      (fun () -> E.run ~on_hit (Engine_intf.Space space))
  in
  let elapsed_s = Clock.elapsed_s ~since:t0 in
  let top = !top in
  {
    best =
      (match top with
      | [] -> None
      | c :: _ -> Some c);
    top;
    evaluated = !evaluated;
    failed = !failed;
    stats;
    elapsed_s;
  }

let improvement result ~baseline =
  match result.best with
  | None -> None
  | Some c ->
    if baseline <= 0.0 then None else Some (c.score /. baseline)

type bi_candidate = {
  bi_scores : float * float;
  bi_bindings : (string * Value.t) list;
}

let dominates (a1, a2) (b1, b2) =
  a1 >= b1 && a2 >= b2 && (a1 > b1 || a2 > b2)

let pareto ?(engine = default_engine) ?(max_front = 64) ~objectives space =
  let (module E : Engine_intf.S) = engine in
  let f1, f2 = objectives in
  let plan = Plan.make_exn space in
  let iter_order = plan.Plan.iter_order in
  let mutex = Mutex.create () in
  let front = ref [] in
  let on_hit lookup =
    let scores = (f1 lookup, f2 lookup) in
    Mutex.lock mutex;
    let dominated =
      List.exists
        (fun c -> dominates c.bi_scores scores || c.bi_scores = scores)
        !front
    in
    if not dominated then begin
      let bindings = List.map (fun n -> (n, lookup n)) iter_order in
      front :=
        { bi_scores = scores; bi_bindings = bindings }
        :: List.filter (fun c -> not (dominates scores c.bi_scores)) !front
    end;
    Mutex.unlock mutex
  in
  ignore
    (Obs.with_span ~cat:"tune"
       ~args:[ ("space", Obs.Str (Space.name space)) ]
       "pareto"
       (fun () -> E.run ~on_hit (Engine_intf.Space space)));
  let sorted =
    List.sort
      (fun a b -> compare (fst b.bi_scores) (fst a.bi_scores))
      !front
  in
  if List.length sorted <= max_front then sorted
  else begin
    (* Keep the extremes and an even subsample of the interior. *)
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    List.init max_front (fun i -> arr.(i * (n - 1) / (max_front - 1)))
  end

let pp_result ?peak ppf r =
  Format.fprintf ppf
    "tuned %d survivors in %.2fs (%d loop iterations, %d pruned%s)@\n"
    r.evaluated r.elapsed_s r.stats.Engine.loop_iterations
    (Engine.total_pruned r.stats)
    (if r.failed > 0 then Printf.sprintf ", %d failed benchmarks" r.failed
     else "");
  List.iteri
    (fun i c ->
      Format.fprintf ppf "  #%-2d score %10.2f" (i + 1) c.score;
      (match peak with
      | Some p when p > 0.0 ->
        Format.fprintf ppf " (%5.1f%% of peak)" (100.0 *. c.score /. p)
      | _ -> ());
      List.iter
        (fun (n, v) -> Format.fprintf ppf " %s=%s" n (Value.to_string v))
        c.bindings;
      Format.fprintf ppf "@\n")
    r.top
