(** The autotuning pipeline of Section I: "the variants that pass the
    pruning process are compiled, run and benchmarked, and the best
    performers are identified". Enumeration and pruning run through the
    engines of {!Beast_core}; benchmarking is the caller's objective
    function (for GPU kernels, the {!Beast_gpu} performance model or
    simulator standing in for the physical card). *)

open Beast_core

type candidate = {
  score : float;
  bindings : (string * Value.t) list;  (** iterators, in loop order *)
}

type result = {
  best : candidate option;
  top : candidate list;  (** best-first, at most [top_n] *)
  evaluated : int;  (** survivors benchmarked successfully *)
  failed : int;
      (** survivors skipped because the objective kept raising or timing
          out through all retries *)
  stats : Engine.stats;  (** enumeration/pruning statistics *)
  elapsed_s : float;
}

val tune :
  ?engine:(module Engine_intf.S) ->
  ?top_n:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  objective:(Expr.lookup -> float) ->
  Space.t ->
  result
(** Sweep the space, score every survivor, keep the [top_n] (default 10)
    best. The engine is any {!Engine_registry} module (default
    {!Engine_registry.Staged}); with parallel engines the objective is
    called concurrently (invocations serialized by the scheduler).

    A raising objective no longer wedges the campaign: each failure is
    retried up to [retries] times (default 1) with exponential backoff
    starting at [backoff_s] seconds (default 0.05), then the
    configuration is skipped and counted in [result.failed].
    [timeout_s] additionally bounds each benchmark call with a
    SIGALRM-based wall-clock guard; a timed-out call counts as a
    failure. The guard is reliable with the sequential engines; under
    the parallel scheduler signal delivery to a worker domain is
    best-effort, so pair [timeout_s] with a sequential engine.

    @raise Plan.Error if the space does not plan.
    @raise Invalid_argument on negative [retries] or [backoff_s]. *)

val improvement : result -> baseline:float -> float option
(** best score / baseline, the "Improvement" column of Table I. *)

val pp_result : ?peak:float -> Format.formatter -> result -> unit
(** Human-readable report; [peak] adds a %-of-peak column (Table I's
    GEMM row reports "80% of peak"). Mentions failed benchmarks only
    when there were any. *)

(** {1 Multi-objective tuning}

    The paper's reference [4] explored performance/energy trade-offs —
    "two objective functions at once". [pareto] sweeps once, scores every
    survivor under both objectives and keeps the non-dominated front. *)

type bi_candidate = {
  bi_scores : float * float;
  bi_bindings : (string * Value.t) list;
}

val pareto :
  ?engine:(module Engine_intf.S) ->
  ?max_front:int ->
  objectives:(Expr.lookup -> float) * (Expr.lookup -> float) ->
  Space.t ->
  bi_candidate list
(** The Pareto-optimal survivors, sorted by descending first objective.
    Both objectives are maximized. [max_front] (default 64) caps the
    retained front size (the extremes are always kept). *)
