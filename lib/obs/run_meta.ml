(* Run manifests: one small JSON file per instrumented run, written at
   start (status "running") and rewritten at exit with the outcome, so
   every artifact a run leaves behind (stats, checkpoint, trace, status
   file, flight dump) can be correlated through the run id and a dead
   run is distinguishable from a live one.

   The id is a content hash (caller-supplied seed: space digest + shard
   coords) salted with a monotonic-clock nonce and the pid, so two
   shards of one sweep — or two runs of the same shard — never collide.
   Writes use the same temp-then-rename discipline as Checkpoint. *)

let format_version = 1

type status =
  | Running
  | Completed
  | Interrupted
  | Crashed

let status_name = function
  | Running -> "running"
  | Completed -> "completed"
  | Interrupted -> "interrupted"
  | Crashed -> "crashed"

let status_of_name = function
  | "running" -> Some Running
  | "completed" -> Some Completed
  | "interrupted" -> Some Interrupted
  | "crashed" -> Some Crashed
  | _ -> None

type t = {
  run_id : string;
  space : string;
  shard : (int * int) option;
  engine : string;
  pid : int;
  status : status;
  exit_code : int option;
  wall_s : float option;
}

let fresh_id ~seed () =
  let salted =
    Printf.sprintf "%s|%d|%d" seed (Clock.now_ns ()) (Unix.getpid ())
  in
  String.sub (Digest.to_hex (Digest.string salted)) 0 12

let make ~run_id ~space ?shard ~engine () =
  {
    run_id;
    space;
    shard;
    engine;
    pid = Unix.getpid ();
    status = Running;
    exit_code = None;
    wall_s = None;
  }

let path ~dir t = Filename.concat dir (t.run_id ^ ".json")

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let to_json t =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let str s = Trace_json.escape buf s in
  add "{\n";
  add "  \"beast_run\": %d,\n" format_version;
  add "  \"run_id\": ";
  str t.run_id;
  add ",\n";
  add "  \"space\": ";
  str t.space;
  add ",\n";
  (match t.shard with
  | None -> ()
  | Some (i, n) -> add "  \"shard\": { \"index\": %d, \"of\": %d },\n" i n);
  add "  \"engine\": ";
  str t.engine;
  add ",\n";
  add "  \"pid\": %d,\n" t.pid;
  add "  \"status\": \"%s\"" (status_name t.status);
  (match t.exit_code with
  | None -> ()
  | Some c -> add ",\n  \"exit_code\": %d" c);
  (match t.wall_s with
  | None -> ()
  | Some w ->
    add ",\n  \"wall_s\": ";
    Trace_json.float buf w);
  add "\n}\n";
  Buffer.contents buf

let mkdir_p dir =
  (* One level of parent creation is enough for the conventional
     "runs/" layout; deeper paths fall through to the final mkdir. *)
  let parent = Filename.dirname dir in
  if parent <> dir && parent <> "." && not (Sys.file_exists parent) then
    (try Unix.mkdir parent 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let save ~dir t =
  mkdir_p dir;
  let file = path ~dir t in
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (to_json t);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp file

let finalize ~dir t ~status ~exit_code ~wall_s =
  let t = { t with status; exit_code = Some exit_code; wall_s = Some wall_s } in
  save ~dir t;
  t

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let fail fmt = Printf.ksprintf (fun msg -> raise (Jsonx.Error msg)) fmt

let decode json =
  (match Jsonx.member_opt "beast_run" json with
  | None -> fail "not a run manifest (missing \"beast_run\" tag)"
  | Some v ->
    let version = Jsonx.to_int "beast_run" v in
    if version <> format_version then
      fail "unsupported manifest format version %d (this build reads %d)"
        version format_version);
  let shard =
    match Jsonx.member_opt "shard" json with
    | None -> None
    | Some s ->
      Some
        ( Jsonx.to_int "index" (Jsonx.member "index" s),
          Jsonx.to_int "of" (Jsonx.member "of" s) )
  in
  let status =
    let name = Jsonx.to_str "status" (Jsonx.member "status" json) in
    match status_of_name name with
    | Some s -> s
    | None -> fail "unknown run status %S" name
  in
  {
    run_id = Jsonx.to_str "run_id" (Jsonx.member "run_id" json);
    space = Jsonx.to_str "space" (Jsonx.member "space" json);
    shard;
    engine = Jsonx.to_str "engine" (Jsonx.member "engine" json);
    pid = Jsonx.to_int "pid" (Jsonx.member "pid" json);
    status;
    exit_code = Option.map (Jsonx.to_int "exit_code") (Jsonx.member_opt "exit_code" json);
    wall_s = Option.map (Jsonx.to_float "wall_s") (Jsonx.member_opt "wall_s" json);
  }

let of_json text =
  match Jsonx.parse text with
  | Error msg -> Error (Printf.sprintf "manifest: %s" msg)
  | Ok json -> (
    try Ok (decode json)
    with Jsonx.Error msg -> Error (Printf.sprintf "manifest: %s" msg))

let of_file file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Printf.sprintf "manifest: %s" msg)
  | text -> of_json text

let entries ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
    |> List.map (fun f ->
           let file = Filename.concat dir f in
           (file, of_file file))

let list ~dir =
  entries ~dir
  |> List.filter_map (fun (_, r) ->
         match r with Ok t -> Some t | Error _ -> None)
