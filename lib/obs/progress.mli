(** Throttled progress reporter for long enumerations.

    Install with {!install}; engines then feed it through
    [Obs.progress_tick] from every sweeping domain. The reporter keeps
    the latest per-domain counts, sums them, and redraws a single
    carriage-return status line (points enumerated, survivors, rate,
    completed fraction and ETA) at most once per [interval_s]. The
    completed fraction comes from the engines' outermost-loop position
    when available, else from [total] (a raw-cardinality estimate).

    When [out] is not a tty the carriage-return redraw is skipped and
    the reporter prints plain newline-terminated lines instead, at a
    slower default cadence, so redirected logs stay readable. *)

type t

val create :
  ?interval_s:float -> ?total:int -> ?out:out_channel -> ?tty:bool ->
  unit -> t
(** [out] defaults to [stderr]; [tty] to [Unix.isatty] on [out];
    [interval_s] to 0.2 on a tty and 2.0 otherwise. *)

val install : t -> unit
(** Register as the global [Obs] progress {e and} chunk-progress hook. *)

val tick :
  t -> dom:int -> points:int -> survivors:int -> frac:float -> unit
(** Direct entry point (what {!install} registers). Thread-safe. *)

val chunk_tick : t -> completed:int -> total:int -> unit
(** Chunk-completion entry point (registered by {!install} as the
    [Obs.chunk_tick] hook). When chunk figures are present the status
    line shows [done/total chunks] and the ETA switches to a
    pruning-aware estimate: remaining chunks priced at the mean wall
    time of the chunks completed this run (chunks restored from a
    checkpoint are excluded from the observed throughput), rather than
    extrapolating from raw point cardinality. Thread-safe. *)

val finish : t -> unit
(** Unregister the hook, draw a final line and terminate it with a
    newline (only if anything was ever drawn). *)
