(* Growable per-domain event buffer. Each domain appends to its own
   chunk list so recording a parallel sweep never contends on event
   payloads; the mutex only guards the domain-id -> buffer table, taken
   once per domain (first emission) and at merge time. *)

type buffer = {
  mutable chunks : Obs.event list;  (* newest first *)
  mutable count : int;
}

type t = {
  mutex : Mutex.t;
  buffers : (int, buffer) Hashtbl.t;
  (* Cache of the calling domain's buffer, one slot per domain. *)
  key : buffer option Domain.DLS.key;
  start_ns : int;
}

let create () =
  {
    mutex = Mutex.create ();
    buffers = Hashtbl.create 8;
    key = Domain.DLS.new_key (fun () -> None);
    start_ns = Clock.now_ns ();
  }

let buffer_for t dom =
  match Domain.DLS.get t.key with
  | Some b -> b
  | None ->
    Mutex.lock t.mutex;
    let b =
      match Hashtbl.find_opt t.buffers dom with
      | Some b -> b
      | None ->
        let b = { chunks = []; count = 0 } in
        Hashtbl.replace t.buffers dom b;
        b
    in
    Mutex.unlock t.mutex;
    Domain.DLS.set t.key (Some b);
    b

let emit t ev =
  let b = buffer_for t ev.Obs.ev_dom in
  b.chunks <- ev :: b.chunks;
  b.count <- b.count + 1

let sink t = { Obs.emit = emit t; flush = ignore }

let start_ns t = t.start_ns

(* Merge the per-domain buffers: concatenate and sort by timestamp.
   The per-domain lists are already time-ordered (single writer), so a
   stable sort on the concatenation is effectively a k-way merge. *)
let events t =
  Mutex.lock t.mutex;
  let total = Hashtbl.fold (fun _ b acc -> acc + b.count) t.buffers 0 in
  let dummy =
    {
      Obs.ev_name = "";
      ev_cat = "";
      ev_ts_ns = 0;
      ev_dom = 0;
      ev_kind = Obs.Instant;
      ev_args = [];
    }
  in
  let arr = Array.make total dummy in
  let i = ref 0 in
  Hashtbl.iter
    (fun _ b ->
      (* chunks is newest-first; lay each buffer out oldest-first. *)
      let j = ref (!i + b.count - 1) in
      List.iter
        (fun ev ->
          arr.(!j) <- ev;
          decr j)
        b.chunks;
      i := !i + b.count)
    t.buffers;
  Mutex.unlock t.mutex;
  Array.stable_sort
    (fun a b -> compare a.Obs.ev_ts_ns b.Obs.ev_ts_ns)
    arr;
  arr

let event_count t =
  Mutex.lock t.mutex;
  let n = Hashtbl.fold (fun _ b acc -> acc + b.count) t.buffers 0 in
  Mutex.unlock t.mutex;
  n

let domains t =
  Mutex.lock t.mutex;
  let ds = Hashtbl.fold (fun d _ acc -> d :: acc) t.buffers [] in
  Mutex.unlock t.mutex;
  List.sort Int.compare ds
