(* The repo's one minimal JSON reader (the repo deliberately carries no
   JSON dependency; writers live in Trace_json and the individual
   serializers). Integers and floats are kept distinct so exact
   round-trips of counts stay exact; a number is a float iff its lexeme
   contains '.', 'e' or 'E'. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m -> raise (Error (Printf.sprintf "at offset %d: %s" !pos m)))
      fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c, got %c" c c'
    | None -> fail "expected %c, got end of input" c
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail "invalid literal"
  in
  (* \uXXXX escapes decode to UTF-8; surrogate pairs combine into the
     astral code point, lone surrogates are rejected. *)
  let read_u4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let hex = String.sub s !pos 4 in
    pos := !pos + 4;
    try int_of_string ("0x" ^ hex) with _ -> fail "invalid \\u escape %s" hex
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let code = read_u4 () in
            if code >= 0xD800 && code <= 0xDBFF then begin
              (* High surrogate: must be chased by \uDC00-\uDFFF. *)
              if
                not
                  (!pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
              then fail "unpaired high surrogate \\u%04X" code;
              pos := !pos + 2;
              let low = read_u4 () in
              if not (low >= 0xDC00 && low <= 0xDFFF) then
                fail "invalid low surrogate \\u%04X" low;
              add_utf8 buf
                (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
            end
            else if code >= 0xDC00 && code <= 0xDFFF then
              fail "unpaired low surrogate \\u%04X" code
            else add_utf8 buf code
          | c -> fail "invalid escape \\%c" c);
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
        advance ();
        digits ()
      | _ -> ()
    in
    (* RFC 8259 integer part: "0" or a nonzero digit followed by more
       digits — "01" is not a number. *)
    (match peek () with
    | Some '0' -> (
      advance ();
      match peek () with
      | Some '0' .. '9' -> fail "leading zero in number"
      | _ -> ())
    | Some '1' .. '9' -> digits ()
    | _ -> fail "expected a number");
    (match peek () with
    | Some '.' ->
      is_float := true;
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with
      | Some ('+' | '-') -> advance ()
      | _ -> ());
      digits ()
    | _ -> ());
    let lexeme = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lexeme with
      | Some f -> Float f
      | None -> fail "invalid number %s" lexeme
    else
      match int_of_string_opt lexeme with
      | Some k -> Int k
      | None -> (
        (* Integer lexeme overflowing the native 63-bit int: keep the
           value, at float precision, rather than rejecting the file. *)
        match float_of_string_opt lexeme with
        | Some f -> Float f
        | None -> fail "invalid integer %s" lexeme)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %c" c
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s = match parse_exn s with v -> Ok v | exception Error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors (raising [Error] with the offending field's name)         *)
(* ------------------------------------------------------------------ *)

let member_opt name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

let member name = function
  | Obj members -> (
    match List.assoc_opt name members with
    | Some v -> v
    | None -> error "missing field %S" name)
  | _ -> error "expected an object with field %S" name

let to_int name = function
  | Int k -> k
  | _ -> error "%s: expected an integer" name

let to_float name = function
  | Int k -> float_of_int k
  | Float f -> f
  | _ -> error "%s: expected a number" name

let to_str name = function
  | Str s -> s
  | _ -> error "%s: expected a string" name

let to_bool name = function
  | Bool b -> b
  | _ -> error "%s: expected a boolean" name

let to_list name = function
  | Arr l -> l
  | _ -> error "%s: expected an array" name

(* ------------------------------------------------------------------ *)
(* Deterministic writer                                                *)
(* ------------------------------------------------------------------ *)

(* The writer is a fixed point of the parser: for any [v],
   [write (parse_exn (to_string v))] produces the same bytes as
   [write v]. Integer-valued floats print without a fraction (so they
   reparse as [Int], which prints identically); everything else uses
   ["%.17g"], which round-trips doubles exactly. NaN and infinities
   have no JSON spelling and print as [null]. *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if f = 0.0 then Buffer.add_char buf '0' (* normalizes -0. *)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int k -> Buffer.add_string buf (string_of_int k)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | Arr l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ", ";
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        add_escaped buf k;
        Buffer.add_string buf ": ";
        write buf v)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pretty v =
  let buf = Buffer.create 256 in
  let scalar = function Arr _ | Obj _ -> false | _ -> true in
  let rec go indent = function
    | Arr l when l <> [] && List.for_all scalar l ->
      (* Scalar arrays stay on one line; they read as tuples. *)
      write buf (Arr l)
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr l ->
      Buffer.add_string buf "[\n";
      let pad = String.make (indent + 2) ' ' in
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          go (indent + 2) v)
        l;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
      Buffer.add_string buf "{\n";
      let pad = String.make (indent + 2) ' ' in
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          add_escaped buf k;
          Buffer.add_string buf ": ";
          go (indent + 2) v)
        members;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'
    | v -> write buf v
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
