(** Cross-run performance archive: an append-only, content-addressed
    store of what every run did, so regressions are detected against
    the recorded trajectory instead of a frozen baseline file.

    One deterministic JSON record per ingested result lives under the
    archive directory ([$BEAST_ARCHIVE], default [.beast/archive]),
    written temp-then-rename like [Checkpoint]. A record wraps a
    {e payload} — a [Stats_io] sweep-statistics file (funnel, constraint
    provenance, metrics snapshot) or a [BENCH_*.json] ablation result —
    plus identity metadata (engine spec, run id, git commit, host) and
    the numeric {e series} extracted from the payload (survivor counts,
    per-constraint fire counts, histogram quantiles, bench timings).

    Records carry no wall-clock timestamp: the id is a content digest
    over kind, label, identity fields and the canonical payload bytes
    ({!Jsonx.to_string}), so re-ingesting identical content dedupes,
    and byte-identical runs archived on the same host compare equal.
    Ordering comes from a monotonic per-archive sequence number
    assigned at ingest. [beast diff] compares two records series-wise;
    [beast trends] runs median/MAD change-point detection over a
    record timeline. *)

val format_version : int

type meta = {
  a_id : string;  (** 12-hex content digest; also the record filename *)
  a_seq : int;  (** ingest order within the archive, from 1 *)
  a_kind : string;  (** ["stats"] or ["bench"] *)
  a_label : string;  (** space name or bench name *)
  a_engine : string option;
  a_run_id : string option;
  a_commit : string option;
  a_host : string option;
}

type record = {
  meta : meta;
  series : (string * float) list;
      (** name-sorted numeric series extracted from the payload *)
  payload : Jsonx.t;
}

(** {2 Locating the archive} *)

val default_dir : unit -> string
(** [$BEAST_ARCHIVE] when set, else [.beast/archive]. *)

val commit_from_env : unit -> string option
(** [$BEAST_COMMIT], falling back to [$GITHUB_SHA] (CI), else [None].
    Reading the environment instead of executing [git] keeps ingest
    dependency-free and deterministic under test. *)

(** {2 Building records} *)

val make :
  seq:int -> ?engine:string -> ?run_id:string -> ?commit:string ->
  ?host:string -> Jsonx.t -> (record, string) result
(** Classify a payload and extract its series. A payload with a
    ["bench"] string field is a bench result labelled by that field;
    one with ["space"]/["survivors"]/["constraints"] is a sweep
    statistics file labelled by the space (its embedded [run_id], when
    present, wins over the [?run_id] override). Anything else —
    including an existing archive record — is an error. *)

val ingest :
  dir:string -> ?engine:string -> ?run_id:string -> ?commit:string ->
  ?host:string -> Jsonx.t -> (record * bool, string) result
(** Append to the archive: assign the next sequence number and write
    [dir/<id>.json] atomically. Returns [(record, fresh)]; [fresh] is
    [false] when a record with the same content id already exists (the
    existing record is returned untouched). *)

(** {2 Reading} *)

val to_json : record -> string
val of_json : string -> (record, string) result
(** [of_json] revalidates: the id and the series are recomputed from
    the stored payload and must match, so a tampered or truncated
    record is rejected with a diagnostic, not silently trusted. *)

val of_file : string -> (record, string) result

val load : dir:string -> record list * (string * string) list
(** All records in [dir] sorted by (seq, id), plus [(file, error)] for
    every record that failed to parse or validate. An absent directory
    is [([], [])]. *)

val find : dir:string -> string -> (record, string) result
(** Resolve a record by unique id prefix. *)

(** {2 Diff} *)

type flag =
  | Same
  | Changed  (** deterministic count series differs *)
  | Regressed  (** timing series grew beyond the threshold *)
  | Only_a
  | Only_b  (** series present on one side only *)

type delta = {
  d_name : string;
  d_timing : bool;
  d_a : float option;
  d_b : float option;
  d_flag : flag;
}

val series_is_timing : string -> bool
(** Timing-like series tolerate jitter up to the diff threshold and
    gate only on growth; everything else is a deterministic count that
    flags on any change. Classified by name: [_s]/[_ms]/[_us]/[_ns]/
    [_pct] suffixes and histogram-derived [/p50] [/p95] [/p99] [/mean]
    components are timing. *)

val diff : ?threshold_pct:float -> record -> record -> delta list
(** Name-sorted union of both records' series; [threshold_pct]
    (default 10) is the allowed timing growth from A to B. *)

val regressions : delta list -> delta list
(** The deltas that make a diff fail: [Regressed], [Changed], and
    series present on only one side. *)

(** {2 Trends} *)

type point = { p_seq : int; p_commit : string option; p_value : float }

type shift = {
  c_index : int;  (** first point of the after-segment *)
  c_before : float;  (** median of the before-segment *)
  c_after : float;  (** median of the after-segment *)
}

type trend = {
  t_name : string;
  t_timing : bool;
  t_points : point list;  (** seq-ordered *)
  t_median : float;
  t_mad : float;
  t_shift : shift option;
}

type group = {
  g_kind : string;
  g_label : string;
  g_engine : string option;
  g_records : int;
  g_trends : trend list;
}

val median : float array -> float
val mad : float array -> float
(** Median absolute deviation from the median (unscaled). *)

val change_point : float array -> shift option
(** Robust two-segment change-point detection: over splits leaving at
    least two points per side, pick the one maximizing the distance
    between segment medians; flag it when that distance exceeds three
    times the mean absolute deviation of the points around their own
    segment's median, plus a small relative floor. Needs four points;
    a constant or merely noisy series yields [None]. *)

val trends : ?series_prefix:string -> record list -> group list
(** Group records by (kind, label, engine) and build the per-series
    timeline of every group with at least one point, seq-ordered.
    [series_prefix] filters series by name prefix. *)
