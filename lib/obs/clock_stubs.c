/* Monotonic clock for Beast_obs.Clock.

   CLOCK_MONOTONIC survives wall-clock adjustments (NTP slews, manual
   date changes), which Unix.gettimeofday does not. The reading is
   returned as a tagged OCaml int: 63 bits of nanoseconds-since-boot
   covers ~146 years, and Val_long keeps the stub allocation-free so the
   external can be [@@noalloc] — one C call, no GC interaction, cheap
   enough to sit inside instrumented enumeration loops. */

#include <caml/mlvalues.h>
#include <time.h>
#include <stdint.h>

CAMLprim value beast_obs_clock_ns(value unit)
{
  (void)unit;
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return Val_long((int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec);
}
