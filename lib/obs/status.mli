(** Heartbeat status file for live run introspection.

    A small deterministic JSON snapshot of a running sweep, atomically
    rewritten (temp-then-rename, the same discipline as checkpoints) at
    most once per interval — so any reader, at any instant, sees a
    complete parseable document. [beast top] renders it; [beast serve]
    workers will publish it.

    Feeding mirrors {!Progress}: engines tick per-domain point and
    survivor counts through the [Obs] progress hook, the parallel
    scheduler ticks chunk completions through the chunk hook, and the
    ETA is the same pruning-aware chunk-throughput estimate (chunks
    restored from a checkpoint are excluded from observed
    throughput). *)

type t

val create :
  ?interval_s:float ->
  ?run_id:string ->
  ?space:string ->
  ?shard:int * int ->
  ?checkpoint_path:string ->
  path:string ->
  unit ->
  t
(** [interval_s] defaults to 1.0; 0 rewrites on every tick (tests).
    [checkpoint_path] is stat-ed at each write to report the age of the
    last checkpoint. Raises [Invalid_argument] on a negative
    interval. *)

val path : t -> string

val install : t -> unit
(** Register as the global [Obs] progress {e and} chunk-progress hook.
    When another reporter (e.g. {!Progress}) also wants the hooks, the
    caller must fan out to {!tick}/{!chunk_tick} itself — the hooks are
    single-slot. *)

val tick : t -> dom:int -> points:int -> survivors:int -> frac:float -> unit
(** Per-domain progress entry point. Thread-safe. *)

val chunk_tick : t -> completed:int -> total:int -> unit
(** Chunk-completion entry point. Thread-safe. *)

val finalize : t -> state:string -> unit
(** Write a last snapshot with the given state (["completed"],
    ["interrupted"], ["crashed"]), bypassing the throttle; idempotent —
    the first call wins and later ticks are ignored. *)

(** {2 Reading} *)

type view = {
  v_state : string;
  v_run_id : string option;
  v_space : string option;
  v_shard : (int * int) option;
  v_pid : int;
  v_elapsed_s : float;
  v_chunks_done : int;
  v_chunks_total : int;
  v_points : int;
  v_survivors : int;
  v_points_per_s : float;
  v_survivor_rate : float;
  v_eta_s : float option;
  v_checkpoint_age_s : float option;
  v_domains : (int * int * int) list;  (** [(dom, points, survivors)] *)
}

val of_json : string -> (view, string) result
val of_file : string -> (view, string) result
