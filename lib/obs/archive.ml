(* Cross-run performance archive. One content-addressed JSON record per
   ingested run result; see archive.mli for the model. Determinism is
   the design center: record bytes are a function of the payload and
   the identity fields alone (no wall clock), so CI can re-ingest and
   compare archives byte-wise, and the id doubles as a tamper check. *)

let format_version = 1

type meta = {
  a_id : string;
  a_seq : int;
  a_kind : string;
  a_label : string;
  a_engine : string option;
  a_run_id : string option;
  a_commit : string option;
  a_host : string option;
}

type record = {
  meta : meta;
  series : (string * float) list;
  payload : Jsonx.t;
}

let default_dir () =
  match Sys.getenv_opt "BEAST_ARCHIVE" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat ".beast" "archive"

let commit_from_env () =
  match Sys.getenv_opt "BEAST_COMMIT" with
  | Some c when c <> "" -> Some c
  | _ -> (
    match Sys.getenv_opt "GITHUB_SHA" with
    | Some c when c <> "" -> Some c
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Classification and series extraction                                *)
(* ------------------------------------------------------------------ *)

let classify payload =
  match payload with
  | Jsonx.Obj _ -> (
    match Jsonx.member_opt "beast_archive" payload with
    | Some _ ->
      Error "already an archive record (ingest the original stats or \
             bench file instead)"
    | None -> (
      match Jsonx.member_opt "bench" payload with
      | Some (Jsonx.Str b) -> Ok ("bench", b, None)
      | Some _ -> Error "\"bench\" field is not a string"
      | None -> (
        match
          ( Jsonx.member_opt "space" payload,
            Jsonx.member_opt "survivors" payload,
            Jsonx.member_opt "constraints" payload )
        with
        | Some (Jsonx.Str sp), Some _, Some _ ->
          let run_id =
            match Jsonx.member_opt "run_id" payload with
            | Some (Jsonx.Str id) -> Some id
            | _ -> None
          in
          Ok ("stats", sp, run_id)
        | _ ->
          Error
            "unrecognized payload: expected a sweep statistics file \
             (space/survivors/constraints) or a BENCH_*.json ablation \
             result")))
  | _ -> Error "payload is not a JSON object"

let label_suffix = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

(* Histogram quantiles/means are derived from the bucket grid, so the
   same payload always extracts the same floats — the series stay a
   pure function of the record content. Empty histograms and NaN
   gauges are skipped (NaN has no JSON spelling). *)
let metrics_series json =
  match Metrics.Snapshot.of_jsonx json with
  | Error msg -> Error ("metrics section: " ^ msg)
  | Ok snap ->
    Ok
      (List.concat_map
         (fun (it : Metrics.item) ->
           let base = "metric/" ^ it.name ^ label_suffix it.labels in
           match it.value with
           | Metrics.Vcounter v -> [ (base, float_of_int v) ]
           | Metrics.Vgauge g -> if Float.is_nan g then [] else [ (base, g) ]
           | Metrics.Vhist h ->
             if h.Metrics.s_count = 0 then []
             else
               [
                 (base ^ "/count", float_of_int h.Metrics.s_count);
                 (base ^ "/p50", Metrics.Snapshot.quantile h 0.50);
                 (base ^ "/p95", Metrics.Snapshot.quantile h 0.95);
                 (base ^ "/p99", Metrics.Snapshot.quantile h 0.99);
                 (base ^ "/mean", Metrics.Snapshot.mean h);
               ])
         snap)

let stats_series payload =
  try
    let num name =
      (name, Jsonx.to_float name (Jsonx.member name payload))
    in
    let constraints =
      Jsonx.to_list "constraints" (Jsonx.member "constraints" payload)
      |> List.map (fun c ->
             let name = Jsonx.to_str "name" (Jsonx.member "name" c) in
             ( "constraint/" ^ name ^ "/fired",
               Jsonx.to_float "fired" (Jsonx.member "fired" c) ))
    in
    let metrics =
      match Jsonx.member_opt "metrics" payload with
      | None -> Ok []
      | Some m -> metrics_series m
    in
    Result.map
      (fun m -> (num "survivors" :: num "loop_iterations" :: constraints) @ m)
      metrics
  with Jsonx.Error msg -> Error msg

let bench_series payload =
  match payload with
  | Jsonx.Obj members ->
    Ok
      (List.concat_map
         (fun (k, v) ->
           match v with
           | Jsonx.Int i -> [ (k, float_of_int i) ]
           | Jsonx.Float f -> if Float.is_nan f then [] else [ (k, f) ]
           | Jsonx.Bool b -> [ (k, if b then 1.0 else 0.0) ]
           | Jsonx.Arr l ->
             List.mapi
               (fun i e ->
                 match e with
                 | Jsonx.Int n ->
                   Some (k ^ "/" ^ string_of_int i, float_of_int n)
                 | Jsonx.Float f when not (Float.is_nan f) ->
                   Some (k ^ "/" ^ string_of_int i, f)
                 | _ -> None)
               l
             |> List.filter_map Fun.id
           | _ -> [])
         members)
  | _ -> Error "payload is not a JSON object"

let extract_series ~kind payload =
  let r =
    if kind = "stats" then stats_series payload else bench_series payload
  in
  Result.map
    (List.sort (fun (a, _) (b, _) -> String.compare a b))
    r

(* ------------------------------------------------------------------ *)
(* Identity                                                            *)
(* ------------------------------------------------------------------ *)

let content_id ~kind ~label ~engine ~run_id ~commit ~host canonical =
  let opt = Option.value ~default:"" in
  let identity =
    String.concat "\x00"
      [ kind; label; opt engine; opt run_id; opt commit; opt host; canonical ]
  in
  String.sub (Digest.to_hex (Digest.string identity)) 0 12

let make ~seq ?engine ?run_id ?commit ?host payload =
  match classify payload with
  | Error _ as e -> e
  | Ok (kind, label, payload_run_id) -> (
    let run_id =
      match payload_run_id with Some _ as id -> id | None -> run_id
    in
    match extract_series ~kind payload with
    | Error msg -> Error msg
    | Ok series ->
      let canonical = Jsonx.to_string payload in
      let a_id =
        content_id ~kind ~label ~engine ~run_id ~commit ~host canonical
      in
      Ok
        {
          meta =
            {
              a_id;
              a_seq = seq;
              a_kind = kind;
              a_label = label;
              a_engine = engine;
              a_run_id = run_id;
              a_commit = commit;
              a_host = host;
            };
          series;
          payload;
        })

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let to_json r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let str s = Jsonx.write buf (Jsonx.Str s) in
  add "{\n";
  add "  \"beast_archive\": %d,\n" format_version;
  add "  \"id\": ";
  str r.meta.a_id;
  add ",\n  \"seq\": %d,\n" r.meta.a_seq;
  add "  \"kind\": ";
  str r.meta.a_kind;
  add ",\n  \"label\": ";
  str r.meta.a_label;
  let opt name = function
    | None -> ()
    | Some v ->
      add ",\n  \"%s\": " name;
      str v
  in
  opt "engine" r.meta.a_engine;
  opt "run_id" r.meta.a_run_id;
  opt "commit" r.meta.a_commit;
  opt "host" r.meta.a_host;
  add ",\n  \"series\": [";
  List.iteri
    (fun i (name, value) ->
      if i > 0 then add ",";
      add "\n    { \"name\": ";
      str name;
      add ", \"value\": ";
      Jsonx.write buf (Jsonx.Float value);
      add " }")
    r.series;
  if r.series <> [] then add "\n  ";
  add "],\n  \"payload\": ";
  Jsonx.write buf r.payload;
  add "\n}\n";
  Buffer.contents buf

let fail fmt = Printf.ksprintf (fun msg -> raise (Jsonx.Error msg)) fmt

let decode json =
  (match Jsonx.member_opt "beast_archive" json with
  | None -> fail "not an archive record (missing \"beast_archive\" tag)"
  | Some v ->
    let version = Jsonx.to_int "beast_archive" v in
    if version <> format_version then
      fail "unsupported archive format version %d (this build reads %d)"
        version format_version);
  let str_opt name =
    Option.map (Jsonx.to_str name) (Jsonx.member_opt name json)
  in
  let series =
    Jsonx.to_list "series" (Jsonx.member "series" json)
    |> List.map (fun row ->
           ( Jsonx.to_str "name" (Jsonx.member "name" row),
             Jsonx.to_float "value" (Jsonx.member "value" row) ))
  in
  {
    meta =
      {
        a_id = Jsonx.to_str "id" (Jsonx.member "id" json);
        a_seq = Jsonx.to_int "seq" (Jsonx.member "seq" json);
        a_kind = Jsonx.to_str "kind" (Jsonx.member "kind" json);
        a_label = Jsonx.to_str "label" (Jsonx.member "label" json);
        a_engine = str_opt "engine";
        a_run_id = str_opt "run_id";
        a_commit = str_opt "commit";
        a_host = str_opt "host";
      };
    series;
    payload = Jsonx.member "payload" json;
  }

(* A record is only as trustworthy as its digest: rebuild it from the
   stored payload and identity fields and require an exact match — of
   the id, the classification, and every extracted series value. *)
let validate r =
  match
    make ~seq:r.meta.a_seq ?engine:r.meta.a_engine ?run_id:r.meta.a_run_id
      ?commit:r.meta.a_commit ?host:r.meta.a_host r.payload
  with
  | Error msg -> Error (Printf.sprintf "stored payload rejected: %s" msg)
  | Ok fresh ->
    if fresh.meta.a_id <> r.meta.a_id then
      Error
        (Printf.sprintf
           "content does not match its id (stored %s, recomputed %s): \
            corrupt or tampered record"
           r.meta.a_id fresh.meta.a_id)
    else if fresh.meta.a_kind <> r.meta.a_kind
            || fresh.meta.a_label <> r.meta.a_label
            || fresh.meta.a_run_id <> r.meta.a_run_id then
      Error "stored kind/label/run_id do not match the payload"
    else if fresh.series <> r.series then
      Error "stored series do not match the payload: corrupt record"
    else Ok r

let of_json text =
  match Jsonx.parse text with
  | Error msg -> Error (Printf.sprintf "archive record: %s" msg)
  | Ok json -> (
    match decode json with
    | exception Jsonx.Error msg ->
      Error (Printf.sprintf "archive record: %s" msg)
    | r -> validate r)

let read_file file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> Ok text

let of_file file =
  match read_file file with Error msg -> Error msg | Ok text -> of_json text

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  let parent = Filename.dirname dir in
  if parent <> dir && parent <> "." && not (Sys.file_exists parent) then (
    try Unix.mkdir parent 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let record_files dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)

(* The next sequence number scans leniently (raw "seq" field, no
   validation) so one corrupt record cannot make its neighbours' seq
   numbers collide. *)
let next_seq dir =
  let seq_of file =
    match read_file file with
    | Error _ -> 0
    | Ok text -> (
      match Jsonx.parse text with
      | Error _ -> 0
      | Ok json -> (
        match Jsonx.member_opt "seq" json with
        | Some (Jsonx.Int s) -> s
        | _ -> 0))
  in
  1 + List.fold_left (fun acc f -> max acc (seq_of f)) 0 (record_files dir)

let write_record ~dir r =
  mkdir_p dir;
  let file = Filename.concat dir (r.meta.a_id ^ ".json") in
  let tmp = Printf.sprintf "%s.%d.tmp" file (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc (to_json r);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp file

let ingest ~dir ?engine ?run_id ?commit ?host payload =
  match make ~seq:0 ?engine ?run_id ?commit ?host payload with
  | Error _ as e -> e
  | Ok probe -> (
    let file = Filename.concat dir (probe.meta.a_id ^ ".json") in
    if Sys.file_exists file then
      match of_file file with
      | Ok existing -> Ok (existing, false)
      | Error msg ->
        Error
          (Printf.sprintf
             "record %s already exists but fails validation (%s); remove \
              it to re-ingest"
             file msg)
    else
      match
        make ~seq:(next_seq dir) ?engine ?run_id ?commit ?host payload
      with
      | Error _ as e -> e
      | Ok r ->
        write_record ~dir r;
        Ok (r, true))

let load ~dir =
  let records, errors =
    List.fold_left
      (fun (rs, es) file ->
        match of_file file with
        | Ok r -> (r :: rs, es)
        | Error msg -> (rs, (file, msg) :: es))
      ([], []) (record_files dir)
  in
  ( List.sort
      (fun a b -> compare (a.meta.a_seq, a.meta.a_id) (b.meta.a_seq, b.meta.a_id))
      records,
    List.rev errors )

let find ~dir prefix =
  let matches =
    record_files dir
    |> List.filter (fun file ->
           let id = Filename.remove_extension (Filename.basename file) in
           String.length id >= String.length prefix
           && String.sub id 0 (String.length prefix) = prefix)
  in
  match matches with
  | [] -> Error (Printf.sprintf "no archive record matches id %S" prefix)
  | [ file ] -> (
    match of_file file with
    | Ok r -> Ok r
    | Error msg -> Error (Printf.sprintf "%s: %s" file msg))
  | files ->
    Error
      (Printf.sprintf "ambiguous id %S matches %d records (%s)" prefix
         (List.length files)
         (String.concat ", "
            (List.map
               (fun f -> Filename.remove_extension (Filename.basename f))
               files)))

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

type flag = Same | Changed | Regressed | Only_a | Only_b

type delta = {
  d_name : string;
  d_timing : bool;
  d_a : float option;
  d_b : float option;
  d_flag : flag;
}

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

let series_is_timing name =
  has_suffix name "_s" || has_suffix name "_ms" || has_suffix name "_us"
  || has_suffix name "_ns" || has_suffix name "_pct"
  || contains name "/p50" || contains name "/p95" || contains name "/p99"
  || contains name "/mean"

let diff ?(threshold_pct = 10.0) a b =
  let rec merge xs ys =
    match (xs, ys) with
    | [], [] -> []
    | (n, v) :: xs', [] -> (n, Some v, None) :: merge xs' []
    | [], (n, v) :: ys' -> (n, None, Some v) :: merge [] ys'
    | (na, va) :: xs', (nb, vb) :: ys' ->
      let c = String.compare na nb in
      if c = 0 then (na, Some va, Some vb) :: merge xs' ys'
      else if c < 0 then (na, Some va, None) :: merge xs' ys
      else (nb, None, Some vb) :: merge xs ys'
  in
  merge a.series b.series
  |> List.map (fun (name, va, vb) ->
         let timing = series_is_timing name in
         let flag =
           match (va, vb) with
           | Some _, None -> Only_a
           | None, Some _ -> Only_b
           | None, None -> Same
           | Some x, Some y ->
             if timing then
               if x = 0.0 then if y = 0.0 then Same else Changed
               else if y > x *. (1.0 +. (threshold_pct /. 100.0)) then
                 Regressed
               else Same
             else if x = y then Same
             else Changed
         in
         { d_name = name; d_timing = timing; d_a = va; d_b = vb; d_flag = flag })

let regressions deltas =
  List.filter (fun d -> d.d_flag <> Same) deltas

(* ------------------------------------------------------------------ *)
(* Trends                                                              *)
(* ------------------------------------------------------------------ *)

type point = { p_seq : int; p_commit : string option; p_value : float }
type shift = { c_index : int; c_before : float; c_after : float }

type trend = {
  t_name : string;
  t_timing : bool;
  t_points : point list;
  t_median : float;
  t_mad : float;
  t_shift : shift option;
}

type group = {
  g_kind : string;
  g_label : string;
  g_engine : string option;
  g_records : int;
  g_trends : trend list;
}

let median a =
  let n = Array.length a in
  if n = 0 then nan
  else begin
    let s = Array.copy a in
    Array.sort compare s;
    if n mod 2 = 1 then s.(n / 2)
    else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0
  end

let mad a =
  let m = median a in
  median (Array.map (fun x -> Float.abs (x -. m)) a)

(* Two-segment split by maximum median distance; a shift is real when
   that distance dominates the within-segment scatter. Mean absolute
   deviation (not MAD) measures the scatter: on a clean step every
   residual is zero, so the step is flagged, while on an alternating or
   noisy series the scatter stays proportional to the oscillation and
   suppresses the false positive that a median-of-residuals (often
   exactly zero) would allow. *)
let change_point a =
  let n = Array.length a in
  if n < 4 then None
  else begin
    let seg_median lo hi = median (Array.sub a lo (hi - lo)) in
    (* Pick the split by best two-segment fit: minimal total absolute
       deviation of the points around their own segment's median.
       (Maximizing the median distance instead can tie between an early
       sloppy split and the true one — on a clean step every split
       between the plateaus has the same distance — whereas the residual
       criterion is zero exactly at the true edge.) *)
    let best = ref None in
    for k = 2 to n - 2 do
      let m1 = seg_median 0 k and m2 = seg_median k n in
      let scatter = ref 0.0 in
      for i = 0 to n - 1 do
        let m = if i < k then m1 else m2 in
        scatter := !scatter +. Float.abs (a.(i) -. m)
      done;
      match !best with
      | Some (_, _, _, cost) when !scatter >= cost -> ()
      | _ -> best := Some (k, m1, m2, !scatter)
    done;
    match !best with
    | None -> None
    | Some (k, m1, m2, scatter) ->
      let d = Float.abs (m2 -. m1) in
      let mean_ad = scatter /. float_of_int n in
      let floor =
        1e-12 +. (0.001 *. Float.max (Float.abs m1) (Float.abs m2))
      in
      if d > 3.0 *. mean_ad && d > floor then
        Some { c_index = k; c_before = m1; c_after = m2 }
      else None
  end

let trends ?series_prefix records =
  let has_prefix name =
    match series_prefix with
    | None -> true
    | Some p ->
      String.length name >= String.length p
      && String.sub name 0 (String.length p) = p
  in
  let keys =
    List.map (fun r -> (r.meta.a_kind, r.meta.a_label, r.meta.a_engine)) records
    |> List.sort_uniq compare
  in
  List.map
    (fun (kind, label, engine) ->
      let rs =
        List.filter
          (fun r ->
            r.meta.a_kind = kind && r.meta.a_label = label
            && r.meta.a_engine = engine)
          records
      in
      let names =
        List.concat_map (fun r -> List.map fst r.series) rs
        |> List.sort_uniq String.compare
        |> List.filter has_prefix
      in
      let trend_of name =
        let points =
          List.filter_map
            (fun r ->
              List.assoc_opt name r.series
              |> Option.map (fun v ->
                     {
                       p_seq = r.meta.a_seq;
                       p_commit = r.meta.a_commit;
                       p_value = v;
                     }))
            rs
        in
        let values = Array.of_list (List.map (fun p -> p.p_value) points) in
        {
          t_name = name;
          t_timing = series_is_timing name;
          t_points = points;
          t_median = median values;
          t_mad = mad values;
          t_shift = change_point values;
        }
      in
      {
        g_kind = kind;
        g_label = label;
        g_engine = engine;
        g_records = List.length rs;
        g_trends = List.map trend_of names;
      })
    keys
