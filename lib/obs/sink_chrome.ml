(* Chrome trace-event JSON (the "JSON Array Format" plus metadata),
   loadable in chrome://tracing and Perfetto. Mapping:

     Begin/End      -> ph "B"/"E"
     Complete dur   -> ph "X" with "dur" (aggregate spans: constraints,
                       loop levels)
     Instant        -> ph "i", thread-scoped
     Counter v      -> ph "C" with args {"value": v}

   pid is fixed at 1; tid is the emitting domain id, so domains show up
   as separate track rows. Timestamps are microseconds (floats) relative
   to the recorder's start so traces begin near zero. *)

let metadata_event buf ~what ~pid ~tid ~name =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":"
       what pid tid);
  Trace_json.escape buf name;
  Buffer.add_string buf "}}"

let thread_name_event buf ~pid ~tid ~name =
  metadata_event buf ~what:"thread_name" ~pid ~tid ~name

let process_name_event buf ~pid ~name =
  metadata_event buf ~what:"process_name" ~pid ~tid:0 ~name

let write_event buf ?(pid = 1) ~start_ns (ev : Obs.event) =
  let ph =
    match ev.Obs.ev_kind with
    | Obs.Begin -> "B"
    | Obs.End -> "E"
    | Obs.Complete _ -> "X"
    | Obs.Instant -> "i"
    | Obs.Counter _ -> "C"
  in
  Buffer.add_string buf "{\"name\":";
  Trace_json.escape buf ev.Obs.ev_name;
  if ev.Obs.ev_cat <> "" then begin
    Buffer.add_string buf ",\"cat\":";
    Trace_json.escape buf ev.Obs.ev_cat
  end;
  Buffer.add_string buf (Printf.sprintf ",\"ph\":\"%s\"" ph);
  Buffer.add_string buf ",\"ts\":";
  Trace_json.float buf (Clock.ns_to_us (ev.Obs.ev_ts_ns - start_ns));
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid ev.Obs.ev_dom);
  (match ev.Obs.ev_kind with
  | Obs.Complete dur ->
    Buffer.add_string buf ",\"dur\":";
    Trace_json.float buf (Clock.ns_to_us dur)
  | Obs.Instant -> Buffer.add_string buf ",\"s\":\"t\""
  | Obs.Begin | Obs.End | Obs.Counter _ -> ());
  (match ev.Obs.ev_kind with
  | Obs.Counter v ->
    Buffer.add_string buf ",\"args\":{\"value\":";
    Trace_json.float buf v;
    Buffer.add_string buf "}"
  | _ ->
    if ev.Obs.ev_args <> [] then begin
      Buffer.add_string buf ",\"args\":";
      Trace_json.args_object buf ev.Obs.ev_args
    end);
  Buffer.add_string buf "}"

let add_process buf ~sep ~pid ~pname ~start_ns events =
  sep ();
  process_name_event buf ~pid ~name:pname;
  (* Name the domain tracks. *)
  let doms = Hashtbl.create 8 in
  Array.iter (fun ev -> Hashtbl.replace doms ev.Obs.ev_dom ()) events;
  Hashtbl.fold (fun d () acc -> d :: acc) doms []
  |> List.sort Int.compare
  |> List.iter (fun d ->
         sep ();
         thread_name_event buf ~pid ~tid:d ~name:(Printf.sprintf "domain %d" d));
  Array.iter
    (fun ev ->
      sep ();
      write_event buf ~pid ~start_ns ev)
    events

let render_processes processes =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  List.iter
    (fun (pid, pname, start_ns, events) ->
      add_process buf ~sep ~pid ~pname ~start_ns events)
    processes;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let render ?(start_ns = 0) events =
  render_processes [ (1, "beast", start_ns, events) ]

let write ?start_ns oc events = output_string oc (render ?start_ns events)
