(* Chrome trace-event JSON (the "JSON Array Format" plus metadata),
   loadable in chrome://tracing and Perfetto. Mapping:

     Begin/End      -> ph "B"/"E"
     Complete dur   -> ph "X" with "dur" (aggregate spans: constraints,
                       loop levels)
     Instant        -> ph "i", thread-scoped
     Counter v      -> ph "C" with args {"value": v}

   pid is fixed at 1; tid is the emitting domain id, so domains show up
   as separate track rows. Timestamps are microseconds (floats) relative
   to the recorder's start so traces begin near zero. *)

let thread_name_event buf ~tid ~name =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":"
       tid);
  Trace_json.escape buf name;
  Buffer.add_string buf "}}"

let write_event buf ~start_ns (ev : Obs.event) =
  let ph =
    match ev.Obs.ev_kind with
    | Obs.Begin -> "B"
    | Obs.End -> "E"
    | Obs.Complete _ -> "X"
    | Obs.Instant -> "i"
    | Obs.Counter _ -> "C"
  in
  Buffer.add_string buf "{\"name\":";
  Trace_json.escape buf ev.Obs.ev_name;
  if ev.Obs.ev_cat <> "" then begin
    Buffer.add_string buf ",\"cat\":";
    Trace_json.escape buf ev.Obs.ev_cat
  end;
  Buffer.add_string buf (Printf.sprintf ",\"ph\":\"%s\"" ph);
  Buffer.add_string buf ",\"ts\":";
  Trace_json.float buf (Clock.ns_to_us (ev.Obs.ev_ts_ns - start_ns));
  Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" ev.Obs.ev_dom);
  (match ev.Obs.ev_kind with
  | Obs.Complete dur ->
    Buffer.add_string buf ",\"dur\":";
    Trace_json.float buf (Clock.ns_to_us dur)
  | Obs.Instant -> Buffer.add_string buf ",\"s\":\"t\""
  | Obs.Begin | Obs.End | Obs.Counter _ -> ());
  (match ev.Obs.ev_kind with
  | Obs.Counter v ->
    Buffer.add_string buf ",\"args\":{\"value\":";
    Trace_json.float buf v;
    Buffer.add_string buf "}"
  | _ ->
    if ev.Obs.ev_args <> [] then begin
      Buffer.add_string buf ",\"args\":";
      Trace_json.args_object buf ev.Obs.ev_args
    end);
  Buffer.add_string buf "}"

let render ?(start_ns = 0) events =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  (* Name the domain tracks. *)
  let doms = Hashtbl.create 8 in
  Array.iter (fun ev -> Hashtbl.replace doms ev.Obs.ev_dom ()) events;
  Hashtbl.fold (fun d () acc -> d :: acc) doms []
  |> List.sort Int.compare
  |> List.iter (fun d ->
         sep ();
         thread_name_event buf ~tid:d ~name:(Printf.sprintf "domain %d" d));
  Array.iter
    (fun ev ->
      sep ();
      write_event buf ~start_ns ev)
    events;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let write ?start_ns oc events = output_string oc (render ?start_ns events)
