(* Dependency-free metrics registry: log-bucketed histograms, counters
   and gauges, recorded per domain without locks on the hot path and
   merged losslessly at snapshot time.

   Histogram buckets follow the HDR scheme: [sub] = 2^3 sub-buckets per
   power-of-two octave. Values below [2*sub] get their own exact bucket;
   a larger value with highest set bit m lands in bucket
   [(m - 3) * sub + (v lsr (m - 3))]. Bucket boundaries are therefore a
   fixed, value-independent grid (relative width <= 1/sub = 12.5%), so
   adding two histograms bucket-wise is exactly the histogram of the
   pooled samples — the property the shard merge relies on.

   Recording is constant-time (msb + two increments) into the calling
   domain's private bucket array; the registry mutex is taken only when
   a domain first touches a metric and when snapshotting. *)

(* ------------------------------------------------------------------ *)
(* Bucket grid                                                         *)
(* ------------------------------------------------------------------ *)

let sub_bits = 3
let sub = 1 lsl sub_bits
let n_buckets = 64 * sub

let msb v =
  (* Position of the highest set bit of [v > 0]; five shift-compare
     steps, no allocation. *)
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin
    r := !r + 32;
    v := !v lsr 32
  end;
  if !v lsr 16 <> 0 then begin
    r := !r + 16;
    v := !v lsr 16
  end;
  if !v lsr 8 <> 0 then begin
    r := !r + 8;
    v := !v lsr 8
  end;
  if !v lsr 4 <> 0 then begin
    r := !r + 4;
    v := !v lsr 4
  end;
  if !v lsr 2 <> 0 then begin
    r := !r + 2;
    v := !v lsr 2
  end;
  if !v lsr 1 <> 0 then incr r;
  !r

let bucket_of_value v =
  if v < 2 * sub then max 0 v
  else
    let k = msb v - sub_bits in
    (k * sub) + (v lsr k)

let bucket_bounds i =
  (* Half-open [lo, hi): every v with lo <= v < hi maps to bucket i. *)
  if i < 2 * sub then (i, i + 1)
  else
    let k = (i / sub) - 1 in
    let offset = i - (k * sub) in
    (offset lsl k, (offset + 1) lsl k)

(* ------------------------------------------------------------------ *)
(* Live metrics: per-domain cells behind a DLS cache                   *)
(* ------------------------------------------------------------------ *)

type hist_cell = {
  hc_buckets : int array;
  mutable hc_count : int;
  mutable hc_sum : int;
}

type histogram = {
  h_mutex : Mutex.t;
  h_cells : (int, hist_cell) Hashtbl.t;
  h_key : hist_cell option Domain.DLS.key;
}

type counter = {
  c_mutex : Mutex.t;
  c_cells : (int, int ref) Hashtbl.t;
  c_key : int ref option Domain.DLS.key;
}

type gauge = {
  g_mutex : Mutex.t;
  mutable g_value : float;
  mutable g_set : bool;
}

let cell_for ~mutex ~cells ~key ~make =
  match Domain.DLS.get key with
  | Some c -> c
  | None ->
    let dom = (Domain.self () :> int) in
    Mutex.lock mutex;
    let c =
      match Hashtbl.find_opt cells dom with
      | Some c -> c
      | None ->
        let c = make () in
        Hashtbl.replace cells dom c;
        c
    in
    Mutex.unlock mutex;
    Domain.DLS.set key (Some c);
    c

let record h v =
  let v = if v < 0 then 0 else v in
  let c =
    cell_for ~mutex:h.h_mutex ~cells:h.h_cells ~key:h.h_key ~make:(fun () ->
        { hc_buckets = Array.make n_buckets 0; hc_count = 0; hc_sum = 0 })
  in
  let i = bucket_of_value v in
  c.hc_buckets.(i) <- c.hc_buckets.(i) + 1;
  c.hc_count <- c.hc_count + 1;
  c.hc_sum <- c.hc_sum + v

let add c n =
  let cell =
    cell_for ~mutex:c.c_mutex ~cells:c.c_cells ~key:c.c_key ~make:(fun () ->
        ref 0)
  in
  cell := !cell + n

let incr c = add c 1

let set_gauge g v =
  Mutex.lock g.g_mutex;
  g.g_value <- v;
  g.g_set <- true;
  Mutex.unlock g.g_mutex

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type handle =
  | Hhist of histogram
  | Hcounter of counter
  | Hgauge of gauge

type meta = {
  m_name : string;
  m_labels : (string * string) list;  (* sorted by label name *)
  m_unit : string;
}

type t = {
  r_mutex : Mutex.t;
  r_metrics : (string, meta * handle) Hashtbl.t;
}

let create () = { r_mutex = Mutex.create (); r_metrics = Hashtbl.create 32 }

let key_of ~name ~labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

let kind_name = function
  | Hhist _ -> "histogram"
  | Hcounter _ -> "counter"
  | Hgauge _ -> "gauge"

let get_or_create r ?(unit_ = "") ~name ~labels ~kind make =
  let labels = List.sort compare labels in
  let key = key_of ~name ~labels in
  Mutex.lock r.r_mutex;
  let h =
    match Hashtbl.find_opt r.r_metrics key with
    | Some (_, h) -> h
    | None ->
      let h = make () in
      Hashtbl.replace r.r_metrics key
        ({ m_name = name; m_labels = labels; m_unit = unit_ }, h);
      h
  in
  Mutex.unlock r.r_mutex;
  if kind_name h <> kind then
    invalid_arg
      (Printf.sprintf "Metrics: %s already registered as a %s, wanted a %s"
         name (kind_name h) kind);
  h

let histogram r ?unit_ ~name ~labels () =
  match
    get_or_create r ?unit_ ~name ~labels ~kind:"histogram" (fun () ->
        Hhist
          {
            h_mutex = Mutex.create ();
            h_cells = Hashtbl.create 8;
            h_key = Domain.DLS.new_key (fun () -> None);
          })
  with
  | Hhist h -> h
  | _ -> assert false

let counter r ?unit_ ~name ~labels () =
  match
    get_or_create r ?unit_ ~name ~labels ~kind:"counter" (fun () ->
        Hcounter
          {
            c_mutex = Mutex.create ();
            c_cells = Hashtbl.create 8;
            c_key = Domain.DLS.new_key (fun () -> None);
          })
  with
  | Hcounter c -> c
  | _ -> assert false

let gauge r ?unit_ ~name ~labels () =
  match
    get_or_create r ?unit_ ~name ~labels ~kind:"gauge" (fun () ->
        Hgauge { g_mutex = Mutex.create (); g_value = 0.0; g_set = false })
  with
  | Hgauge g -> g
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Global installation (mirrors Obs's sink switch)                     *)
(* ------------------------------------------------------------------ *)

let current_ref : t option ref = ref None
let set_current r = current_ref := Some r
let clear_current () = current_ref := None
let current () = !current_ref
let enabled () = !current_ref <> None

let time_phase name f =
  match !current_ref with
  | None -> f ()
  | Some r ->
    let h = histogram r ~unit_:"ns" ~name:"phase_ns" ~labels:[ ("phase", name) ] () in
    let t0 = Clock.now_ns () in
    Fun.protect ~finally:(fun () -> record h (Clock.now_ns () - t0)) f

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  s_sub : int;
  s_count : int;
  s_sum : int;
  s_buckets : (int * int) list;  (* sparse (index, count), index-sorted *)
}

type mvalue =
  | Vhist of hist_snapshot
  | Vcounter of int
  | Vgauge of float

type item = {
  name : string;
  labels : (string * string) list;
  unit_ : string;
  value : mvalue;
}

type snapshot = item list

let hist_snapshot_of h =
  Mutex.lock h.h_mutex;
  let buckets = Array.make n_buckets 0 in
  let count = ref 0 and sum = ref 0 in
  Hashtbl.iter
    (fun _ c ->
      Array.iteri (fun i k -> buckets.(i) <- buckets.(i) + k) c.hc_buckets;
      count := !count + c.hc_count;
      sum := !sum + c.hc_sum)
    h.h_cells;
  Mutex.unlock h.h_mutex;
  let sparse = ref [] in
  for i = n_buckets - 1 downto 0 do
    if buckets.(i) > 0 then sparse := (i, buckets.(i)) :: !sparse
  done;
  { s_sub = sub; s_count = !count; s_sum = !sum; s_buckets = !sparse }

let counter_value c =
  Mutex.lock c.c_mutex;
  let v = Hashtbl.fold (fun _ cell acc -> acc + !cell) c.c_cells 0 in
  Mutex.unlock c.c_mutex;
  v

let compare_item a b =
  match String.compare a.name b.name with
  | 0 -> compare a.labels b.labels
  | c -> c

let snapshot r =
  Mutex.lock r.r_mutex;
  let metas = Hashtbl.fold (fun _ mh acc -> mh :: acc) r.r_metrics [] in
  Mutex.unlock r.r_mutex;
  List.map
    (fun (m, h) ->
      let value =
        match h with
        | Hhist h -> Vhist (hist_snapshot_of h)
        | Hcounter c -> Vcounter (counter_value c)
        | Hgauge g -> Vgauge g.g_value
      in
      { name = m.m_name; labels = m.m_labels; unit_ = m.m_unit; value })
    metas
  |> List.sort compare_item

module Snapshot = struct
  type t = snapshot

  let empty : t = []

  let equal (a : t) (b : t) = a = b

  (* ---------------- statistics ---------------- *)

  let quantile (h : hist_snapshot) q =
    if h.s_count = 0 then Float.nan
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let rank = q *. float_of_int h.s_count in
      let rec walk cum = function
        | [] -> Float.nan
        | (i, k) :: rest ->
          let cum' = cum +. float_of_int k in
          if cum' >= rank || rest = [] then begin
            let lo, hi = bucket_bounds i in
            let frac =
              if k = 0 then 0.0
              else Float.min 1.0 (Float.max 0.0 ((rank -. cum) /. float_of_int k))
            in
            float_of_int lo +. (float_of_int (hi - lo) *. frac)
          end
          else walk cum' rest
      in
      walk 0.0 h.s_buckets
    end

    let mean (h : hist_snapshot) =
      if h.s_count = 0 then Float.nan
      else float_of_int h.s_sum /. float_of_int h.s_count

    let max_bound (h : hist_snapshot) =
      match List.rev h.s_buckets with
      | [] -> 0
      | (i, _) :: _ -> snd (bucket_bounds i)

  (* ---------------- merging ---------------- *)

  let merge_hist a b =
    if a.s_sub <> b.s_sub then
      Error
        (Printf.sprintf "histogram sub-bucket mismatch (%d vs %d)" a.s_sub
           b.s_sub)
    else begin
      let rec go xs ys =
        match (xs, ys) with
        | [], l | l, [] -> l
        | (i, k) :: xr, (j, _) :: _ when i < j -> (i, k) :: go xr ys
        | (i, _) :: _, (j, k) :: yr when j < i -> (j, k) :: go xs yr
        | (i, k) :: xr, (_, k') :: yr -> (i, k + k') :: go xr yr
      in
      Ok
        {
          s_sub = a.s_sub;
          s_count = a.s_count + b.s_count;
          s_sum = a.s_sum + b.s_sum;
          s_buckets = go a.s_buckets b.s_buckets;
        }
    end

  let merge_item a b =
    match (a.value, b.value) with
    | Vhist x, Vhist y ->
      Result.map (fun h -> { a with value = Vhist h }) (merge_hist x y)
    | Vcounter x, Vcounter y -> Ok { a with value = Vcounter (x + y) }
    | Vgauge x, Vgauge y -> Ok { a with value = Vgauge (Float.max x y) }
    | _ ->
      Error (Printf.sprintf "metric %s changes kind between snapshots" a.name)

  (* Union by (name, labels): histogram buckets and counters add (the
     pooled-sample semantics — lossless for histograms); gauges keep
     the maximum. Items present in only some snapshots pass through. *)
  let merge (snaps : t list) : (t, string) result =
    let rec merge2 xs ys =
      match (xs, ys) with
      | [], l | l, [] -> Ok l
      | x :: xr, y :: _ when compare_item x y < 0 ->
        Result.map (fun l -> x :: l) (merge2 xr ys)
      | x :: _, y :: yr when compare_item y x < 0 ->
        Result.map (fun l -> y :: l) (merge2 xs yr)
      | x :: xr, y :: yr -> (
        match merge_item x y with
        | Error _ as e -> e
        | Ok m -> Result.map (fun l -> m :: l) (merge2 xr yr))
    in
    List.fold_left
      (fun acc s -> Result.bind acc (fun m -> merge2 m s))
      (Ok empty) snaps

  (* ---------------- selection ---------------- *)

  let find (t : t) ~name ~labels =
    let labels = List.sort compare labels in
    List.find_opt (fun it -> it.name = name && it.labels = labels) t

  let histograms (t : t) ~name =
    List.filter_map
      (fun it ->
        match it.value with
        | Vhist h when it.name = name -> Some (it.labels, h)
        | _ -> None)
      t

  (* ---------------- JSON ---------------- *)

  let add_json_item buf it =
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    add "{ \"name\": ";
    Trace_json.escape buf it.name;
    add ", \"labels\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then add ", ";
        Trace_json.escape buf k;
        add ": ";
        Trace_json.escape buf v)
      it.labels;
    add "}";
    if it.unit_ <> "" then begin
      add ", \"unit\": ";
      Trace_json.escape buf it.unit_
    end;
    (match it.value with
    | Vhist h ->
      add ", \"type\": \"histogram\", \"sub\": %d, \"count\": %d, \"sum\": %d, \"buckets\": ["
        h.s_sub h.s_count h.s_sum;
      List.iteri
        (fun i (b, k) ->
          if i > 0 then add ", ";
          add "[%d, %d]" b k)
        h.s_buckets;
      add "]"
    | Vcounter v -> add ", \"type\": \"counter\", \"value\": %d" v
    | Vgauge v ->
      add ", \"type\": \"gauge\", \"value\": ";
      Trace_json.float buf v);
    add " }"

  (* Deterministic: items sorted by (name, labels), labels sorted, fixed
     key order, sparse index-sorted buckets. [indent] prefixes the
     per-item lines so the block nests inside Stats_io's layout. *)
  let add_json buf ?(indent = "") (t : t) =
    Buffer.add_string buf "[";
    List.iteri
      (fun i it ->
        Buffer.add_string buf (if i = 0 then "\n" else ",\n");
        Buffer.add_string buf indent;
        Buffer.add_string buf "  ";
        add_json_item buf it)
      t;
    if t <> [] then begin
      Buffer.add_string buf "\n";
      Buffer.add_string buf indent
    end;
    Buffer.add_string buf "]"

  let to_json (t : t) =
    let buf = Buffer.create 1024 in
    add_json buf t;
    Buffer.contents buf

  let of_jsonx (json : Jsonx.t) : (t, string) result =
    try
      let items =
        List.map
          (fun row ->
            let name = Jsonx.to_str "name" (Jsonx.member "name" row) in
            let labels =
              match Jsonx.member_opt "labels" row with
              | Some (Jsonx.Obj kvs) ->
                List.sort compare
                  (List.map (fun (k, v) -> (k, Jsonx.to_str k v)) kvs)
              | Some _ -> raise (Jsonx.Error "labels: expected an object")
              | None -> []
            in
            let unit_ =
              match Jsonx.member_opt "unit" row with
              | Some u -> Jsonx.to_str "unit" u
              | None -> ""
            in
            let value =
              match Jsonx.to_str "type" (Jsonx.member "type" row) with
              | "histogram" ->
                let buckets =
                  List.map
                    (fun pair ->
                      match pair with
                      | Jsonx.Arr [ b; k ] ->
                        (Jsonx.to_int "bucket" b, Jsonx.to_int "count" k)
                      | _ ->
                        raise (Jsonx.Error "buckets: expected [index, count]"))
                    (Jsonx.to_list "buckets" (Jsonx.member "buckets" row))
                in
                Vhist
                  {
                    s_sub = Jsonx.to_int "sub" (Jsonx.member "sub" row);
                    s_count = Jsonx.to_int "count" (Jsonx.member "count" row);
                    s_sum = Jsonx.to_int "sum" (Jsonx.member "sum" row);
                    s_buckets = buckets;
                  }
              | "counter" ->
                Vcounter (Jsonx.to_int "value" (Jsonx.member "value" row))
              | "gauge" ->
                Vgauge (Jsonx.to_float "value" (Jsonx.member "value" row))
              | other ->
                raise
                  (Jsonx.Error (Printf.sprintf "unknown metric type %S" other))
            in
            { name; labels; unit_; value })
          (Jsonx.to_list "metrics" json)
      in
      Ok (List.sort compare_item items)
    with Jsonx.Error msg -> Error msg

  let of_json text =
    match Jsonx.parse text with
    | Error msg -> Error msg
    | Ok json -> of_jsonx json

  (* ---------------- Prometheus text exposition ---------------- *)

  let prom_labels buf labels =
    if labels <> [] then begin
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=";
          Trace_json.escape buf v)
        labels;
      Buffer.add_char buf '}'
    end

  let prom_labels_plus buf labels extra =
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=";
        Trace_json.escape buf v)
      (labels @ [ extra ]);
    Buffer.add_char buf '}'

  let to_prometheus (t : t) =
    let buf = Buffer.create 4096 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let typed = Hashtbl.create 16 in
    List.iter
      (fun it ->
        let kind =
          match it.value with
          | Vhist _ -> "histogram"
          | Vcounter _ -> "counter"
          | Vgauge _ -> "gauge"
        in
        if not (Hashtbl.mem typed it.name) then begin
          Hashtbl.replace typed it.name ();
          add "# TYPE %s %s\n" it.name kind
        end;
        match it.value with
        | Vcounter v ->
          Buffer.add_string buf it.name;
          prom_labels buf it.labels;
          add " %d\n" v
        | Vgauge v ->
          Buffer.add_string buf it.name;
          prom_labels buf it.labels;
          Buffer.add_char buf ' ';
          Trace_json.float buf v;
          Buffer.add_char buf '\n'
        | Vhist h ->
          let cum = ref 0 in
          List.iter
            (fun (i, k) ->
              cum := !cum + k;
              let _, hi = bucket_bounds i in
              add "%s_bucket" it.name;
              prom_labels_plus buf it.labels ("le", string_of_int hi);
              add " %d\n" !cum)
            h.s_buckets;
          add "%s_bucket" it.name;
          prom_labels_plus buf it.labels ("le", "+Inf");
          add " %d\n" h.s_count;
          add "%s_sum" it.name;
          prom_labels buf it.labels;
          add " %d\n" h.s_sum;
          add "%s_count" it.name;
          prom_labels buf it.labels;
          add " %d\n" h.s_count)
      t;
    Buffer.contents buf
end
