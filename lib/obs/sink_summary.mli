(** Human-readable trace summary.

    Aggregates a recorded event stream by name across domains and
    prints: span wall-time totals, top constraints by cumulative
    evaluation time / by firings / by points removed (when funnel
    attribution events are present), per-level loop timings and counter
    statistics. *)

val write : ?top_n:int -> Format.formatter -> Obs.event array -> unit
val to_string : ?top_n:int -> Obs.event array -> string
