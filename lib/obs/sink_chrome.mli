(** Chrome trace-event JSON writer.

    Produces the object form [{"traceEvents": [...]}] accepted by
    [chrome://tracing] and Perfetto. Span begin/end map to ph "B"/"E",
    aggregate {!Obs.Complete} spans to ph "X", counters to ph "C";
    domains appear as named track rows (tid = domain id) with
    [thread_name]/[process_name] metadata events so viewers label the
    tracks. Timestamps are microseconds relative to [start_ns]. *)

val render : ?start_ns:int -> Obs.event array -> string
(** Single process (pid 1, named "beast"). *)

val render_processes : (int * string * int * Obs.event array) list -> string
(** Multi-process trace: one [(pid, name, start_ns, events)] group per
    process, with the caller assigning pids — [beast merge --traces]
    stitches per-shard traces into one view (shard as process, domain
    as thread) and uses the real shard index for the pid, so the
    [process_name] labels survive re-ordering of the input files. Each
    group's timestamps are rendered relative to its own [start_ns]. *)

val write : ?start_ns:int -> out_channel -> Obs.event array -> unit
