(** Chrome trace-event JSON writer.

    Produces the object form [{"traceEvents": [...]}] accepted by
    [chrome://tracing] and Perfetto. Span begin/end map to ph "B"/"E",
    aggregate {!Obs.Complete} spans to ph "X", counters to ph "C";
    domains appear as named track rows (tid = domain id) with
    [thread_name]/[process_name] metadata events so viewers label the
    tracks. Timestamps are microseconds relative to [start_ns]. *)

val render : ?start_ns:int -> Obs.event array -> string
(** Single process (pid 1, named "beast"). *)

val render_processes : (string * int * Obs.event array) list -> string
(** Multi-process trace: one [(name, start_ns, events)] group per
    process, pid assigned from position (1-based). Used by
    [beast merge --traces] to stitch per-shard traces into one view —
    shard as process, domain as thread. Each group's timestamps are
    rendered relative to its own [start_ns]. *)

val write : ?start_ns:int -> out_channel -> Obs.event array -> unit
