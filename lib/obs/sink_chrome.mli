(** Chrome trace-event JSON writer.

    Produces the object form [{"traceEvents": [...]}] accepted by
    [chrome://tracing] and Perfetto. Span begin/end map to ph "B"/"E",
    aggregate {!Obs.Complete} spans to ph "X", counters to ph "C";
    domains appear as named track rows (pid 1, tid = domain id).
    Timestamps are microseconds relative to [start_ns]. *)

val render : ?start_ns:int -> Obs.event array -> string
val write : ?start_ns:int -> out_channel -> Obs.event array -> unit
