(** Flight recorder: fixed-size per-domain rings of recent events.

    Keeps the last [capacity] {!Obs} events per domain in preallocated
    ring buffers — memory is bounded whatever the run length, unlike
    {!Recorder} — so a crash or kill dump captures the run's final
    moments without the cost of full tracing. The emit path is an
    array store and two counter bumps (the calling domain's ring is
    cached in domain-local storage); the mutex only guards the
    domain-id table, taken once per domain and at snapshot time.

    Install with [Obs.set_sink (Flight.sink t)], or with {!tee} to
    record while also feeding another sink. Dump with {!dump} from a
    signal handler or exception path: the output is plain JSONL
    ({!Sink_jsonl} lines) written atomically, so it round-trips
    through [Sink_jsonl.read_file]. *)

type t

val default_capacity : int
(** 512 events per domain. *)

val create : ?capacity:int -> unit -> t
(** [capacity] is per domain; raises [Invalid_argument] when below 1. *)

val capacity : t -> int

val sink : t -> Obs.sink

val tee : t -> Obs.sink -> Obs.sink
(** A sink that records into the rings and forwards every event to the
    inner sink (flush goes to the inner sink alone). *)

val emit : t -> Obs.event -> unit

val events : t -> Obs.event array
(** Merged snapshot of all rings, sorted by timestamp (stable).
    Thread-safe against concurrent emission from other domains. *)

val event_count : t -> int

val dump : t -> string -> int
(** Write the merged snapshot as JSONL to the given path
    (temp-then-rename, so never a truncated file under the real name);
    returns the number of events written. *)
