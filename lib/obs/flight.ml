(* Flight recorder: a fixed-size per-domain ring of the most recent Obs
   events, kept so a post-mortem gets the last moments of a run without
   paying full --trace cost (the rings never grow; old events are
   overwritten in place).

   Layout follows Recorder: each domain writes its own ring, the mutex
   only guards the domain-id -> ring table (taken once per domain and at
   merge time), and the calling domain's ring is cached in domain-local
   storage so the emit path is an array store and two counter bumps. *)

let dummy =
  {
    Obs.ev_name = "";
    ev_cat = "";
    ev_ts_ns = 0;
    ev_dom = 0;
    ev_kind = Obs.Instant;
    ev_args = [];
  }

type ring = {
  buf : Obs.event array;
  mutable next : int;  (* slot the next event lands in *)
  mutable count : int;  (* events currently held, <= capacity *)
}

type t = {
  mutex : Mutex.t;
  rings : (int, ring) Hashtbl.t;
  key : ring option Domain.DLS.key;
  capacity : int;
}

let default_capacity = 512

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be positive";
  {
    mutex = Mutex.create ();
    rings = Hashtbl.create 8;
    key = Domain.DLS.new_key (fun () -> None);
    capacity;
  }

let capacity t = t.capacity

let ring_for t dom =
  match Domain.DLS.get t.key with
  | Some r -> r
  | None ->
    Mutex.lock t.mutex;
    let r =
      match Hashtbl.find_opt t.rings dom with
      | Some r -> r
      | None ->
        let r = { buf = Array.make t.capacity dummy; next = 0; count = 0 } in
        Hashtbl.replace t.rings dom r;
        r
    in
    Mutex.unlock t.mutex;
    Domain.DLS.set t.key (Some r);
    r

let emit t ev =
  let r = ring_for t ev.Obs.ev_dom in
  r.buf.(r.next) <- ev;
  r.next <- (r.next + 1) mod Array.length r.buf;
  if r.count < Array.length r.buf then r.count <- r.count + 1

let sink t = { Obs.emit = emit t; flush = ignore }

let tee t inner =
  { Obs.emit = (fun ev -> emit t ev; inner.Obs.emit ev); flush = inner.Obs.flush }

(* Merged snapshot: each ring laid out oldest-first, then a stable sort
   by timestamp (per-ring order is already chronological, single
   writer). *)
let events t =
  Mutex.lock t.mutex;
  let total = Hashtbl.fold (fun _ r acc -> acc + r.count) t.rings 0 in
  let arr = Array.make (max 1 total) dummy in
  let i = ref 0 in
  Hashtbl.iter
    (fun _ r ->
      let cap = Array.length r.buf in
      let start = if r.count < cap then 0 else r.next in
      for j = 0 to r.count - 1 do
        arr.(!i) <- r.buf.((start + j) mod cap);
        incr i
      done)
    t.rings;
  Mutex.unlock t.mutex;
  let arr = if total = 0 then [||] else arr in
  Array.stable_sort (fun a b -> compare a.Obs.ev_ts_ns b.Obs.ev_ts_ns) arr;
  arr

let event_count t =
  Mutex.lock t.mutex;
  let n = Hashtbl.fold (fun _ r acc -> acc + r.count) t.rings 0 in
  Mutex.unlock t.mutex;
  n

(* Atomic JSONL dump (temp-then-rename, like Checkpoint.save): a dump
   interrupted mid-write leaves no truncated file under the real name.
   Pure event lines, so Sink_jsonl.read_file round-trips the dump. *)
let dump t file =
  let evs = events t in
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Sink_jsonl.write oc evs;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp file;
  Array.length evs
