(* Heartbeat status file: a small deterministic JSON snapshot of a
   running sweep, atomically rewritten (temp-then-rename, the
   Checkpoint discipline) at most once per interval. Anything on the
   machine — `beast top`, a wrapper script, a future `beast serve`
   worker poller — can read the file at any instant and always sees a
   complete, parseable document.

   Feeding mirrors Progress: engines tick per-domain figures through
   the Obs progress hook, the parallel scheduler ticks chunk
   completions through the chunk hook, and the pruning-aware ETA is the
   same chunk-throughput estimate (c_base excludes chunks restored from
   a checkpoint so resumed runs don't count them as observed
   throughput). *)

type dom_state = {
  mutable d_points : int;
  mutable d_survivors : int;
}

type t = {
  mutex : Mutex.t;
  doms : (int, dom_state) Hashtbl.t;
  path : string;
  run_id : string option;
  space : string option;
  shard : (int * int) option;
  checkpoint_path : string option;
  pid : int;
  interval_ns : int;
  start_ns : int;
  mutable last_write_ns : int;
  mutable c_done : int;
  mutable c_total : int;
  mutable c_base : int;
  mutable finalized : bool;
}

let create ?(interval_s = 1.0) ?run_id ?space ?shard ?checkpoint_path ~path ()
    =
  if interval_s < 0.0 then
    invalid_arg "Status.create: interval must be non-negative";
  {
    mutex = Mutex.create ();
    doms = Hashtbl.create 8;
    path;
    run_id;
    space;
    shard;
    checkpoint_path;
    pid = Unix.getpid ();
    interval_ns = int_of_float (interval_s *. 1e9);
    start_ns = Clock.now_ns ();
    last_write_ns = 0;
    c_done = 0;
    c_total = 0;
    c_base = -1;
    finalized = false;
  }

let path t = t.path

let checkpoint_age_s t =
  match t.checkpoint_path with
  | None -> None
  | Some p -> (
    match Unix.stat p with
    | st -> Some (Float.max 0.0 (Unix.gettimeofday () -. st.Unix.st_mtime))
    | exception Unix.Unix_error _ -> None)

let render t ~state ~now =
  let points, survivors =
    Hashtbl.fold
      (fun _ d (p, s) -> (p + d.d_points, s + d.d_survivors))
      t.doms (0, 0)
  in
  let elapsed = Clock.ns_to_s (now - t.start_ns) in
  let rate = if elapsed > 0.0 then float_of_int points /. elapsed else 0.0 in
  let survivor_rate =
    if points > 0 then float_of_int survivors /. float_of_int points else 0.0
  in
  (* Pruning-aware ETA (see Progress): remaining chunks priced at the
     mean wall time of chunks completed this run. *)
  let eta_s =
    let observed = t.c_done - max 0 t.c_base in
    if t.c_total > 0 && observed > 0 && elapsed > 0.0 then
      Some (elapsed *. float_of_int (t.c_total - t.c_done) /. float_of_int observed)
    else None
  in
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let str s = Trace_json.escape buf s in
  let flt f = Trace_json.float buf f in
  let opt_float name = function
    | None -> add ",\n  \"%s\": null" name
    | Some v ->
      add ",\n  \"%s\": " name;
      flt v
  in
  add "{\n";
  add "  \"beast_status\": 1,\n";
  add "  \"state\": \"%s\",\n" state;
  (match t.run_id with
  | None -> ()
  | Some id ->
    add "  \"run_id\": ";
    str id;
    add ",\n");
  (match t.space with
  | None -> ()
  | Some sp ->
    add "  \"space\": ";
    str sp;
    add ",\n");
  (match t.shard with
  | None -> ()
  | Some (i, n) -> add "  \"shard\": { \"index\": %d, \"of\": %d },\n" i n);
  add "  \"pid\": %d,\n" t.pid;
  add "  \"elapsed_s\": ";
  flt elapsed;
  add ",\n  \"chunks\": { \"done\": %d, \"total\": %d }" t.c_done t.c_total;
  add ",\n  \"points\": %d" points;
  add ",\n  \"survivors\": %d" survivors;
  add ",\n  \"points_per_s\": ";
  flt rate;
  add ",\n  \"survivor_rate\": ";
  flt survivor_rate;
  opt_float "eta_s" eta_s;
  opt_float "checkpoint_age_s" (checkpoint_age_s t);
  add ",\n  \"domains\": [";
  let doms =
    Hashtbl.fold (fun d st acc -> (d, st) :: acc) t.doms []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iteri
    (fun i (d, st) ->
      add "%s\n    { \"dom\": %d, \"points\": %d, \"survivors\": %d }"
        (if i = 0 then "" else ",")
        d st.d_points st.d_survivors)
    doms;
  if doms <> [] then add "\n  ";
  add "]\n}\n";
  Buffer.contents buf

(* Temp-then-rename so a reader never sees a torn snapshot; the temp
   name carries the pid so two runs pointed at one status path (a
   configuration mistake) cannot corrupt each other's rename. *)
let write t ~state ~now =
  let text = render t ~state ~now in
  let tmp = Printf.sprintf "%s.%d.tmp" t.path t.pid in
  let oc = open_out_bin tmp in
  (try
     output_string oc text;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp t.path;
  t.last_write_ns <- now

let maybe_write t =
  if not t.finalized then begin
    let now = Clock.now_ns () in
    if now - t.last_write_ns >= t.interval_ns then write t ~state:"running" ~now
  end

let tick t ~dom ~points ~survivors ~frac:_ =
  Mutex.lock t.mutex;
  let d =
    match Hashtbl.find_opt t.doms dom with
    | Some d -> d
    | None ->
      let d = { d_points = 0; d_survivors = 0 } in
      Hashtbl.replace t.doms dom d;
      d
  in
  d.d_points <- points;
  d.d_survivors <- survivors;
  maybe_write t;
  Mutex.unlock t.mutex

let chunk_tick t ~completed ~total =
  Mutex.lock t.mutex;
  if t.c_base < 0 then t.c_base <- completed;
  t.c_done <- max t.c_done completed;
  t.c_total <- total;
  maybe_write t;
  Mutex.unlock t.mutex

let install t =
  (* Coarse: end-of-run/chunk ticks are plenty for a 1 Hz heartbeat,
     and they keep the engines off their instrumented path. *)
  Obs.set_progress ~fine:false (tick t);
  Obs.set_chunk_progress (chunk_tick t)

let finalize t ~state =
  Mutex.lock t.mutex;
  if not t.finalized then begin
    t.finalized <- true;
    write t ~state ~now:(Clock.now_ns ())
  end;
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* Reading (beast top, tests)                                          *)
(* ------------------------------------------------------------------ *)

type view = {
  v_state : string;
  v_run_id : string option;
  v_space : string option;
  v_shard : (int * int) option;
  v_pid : int;
  v_elapsed_s : float;
  v_chunks_done : int;
  v_chunks_total : int;
  v_points : int;
  v_survivors : int;
  v_points_per_s : float;
  v_survivor_rate : float;
  v_eta_s : float option;
  v_checkpoint_age_s : float option;
  v_domains : (int * int * int) list;  (* dom, points, survivors *)
}

let fail fmt = Printf.ksprintf (fun msg -> raise (Jsonx.Error msg)) fmt

let decode json =
  (match Jsonx.member_opt "beast_status" json with
  | None -> fail "not a status file (missing \"beast_status\" tag)"
  | Some v ->
    let version = Jsonx.to_int "beast_status" v in
    if version <> 1 then
      fail "unsupported status format version %d (this build reads 1)" version);
  let opt_float name =
    match Jsonx.member_opt name json with
    | None | Some Jsonx.Null -> None
    | Some v -> Some (Jsonx.to_float name v)
  in
  let chunks = Jsonx.member "chunks" json in
  {
    v_state = Jsonx.to_str "state" (Jsonx.member "state" json);
    v_run_id = Option.map (Jsonx.to_str "run_id") (Jsonx.member_opt "run_id" json);
    v_space = Option.map (Jsonx.to_str "space") (Jsonx.member_opt "space" json);
    v_shard =
      Option.map
        (fun s ->
          ( Jsonx.to_int "index" (Jsonx.member "index" s),
            Jsonx.to_int "of" (Jsonx.member "of" s) ))
        (Jsonx.member_opt "shard" json);
    v_pid = Jsonx.to_int "pid" (Jsonx.member "pid" json);
    v_elapsed_s = Jsonx.to_float "elapsed_s" (Jsonx.member "elapsed_s" json);
    v_chunks_done = Jsonx.to_int "done" (Jsonx.member "done" chunks);
    v_chunks_total = Jsonx.to_int "total" (Jsonx.member "total" chunks);
    v_points = Jsonx.to_int "points" (Jsonx.member "points" json);
    v_survivors = Jsonx.to_int "survivors" (Jsonx.member "survivors" json);
    v_points_per_s =
      Jsonx.to_float "points_per_s" (Jsonx.member "points_per_s" json);
    v_survivor_rate =
      Jsonx.to_float "survivor_rate" (Jsonx.member "survivor_rate" json);
    v_eta_s = opt_float "eta_s";
    v_checkpoint_age_s = opt_float "checkpoint_age_s";
    v_domains =
      List.map
        (fun row ->
          ( Jsonx.to_int "dom" (Jsonx.member "dom" row),
            Jsonx.to_int "points" (Jsonx.member "points" row),
            Jsonx.to_int "survivors" (Jsonx.member "survivors" row) ))
        (Jsonx.to_list "domains" (Jsonx.member "domains" json));
  }

let of_json text =
  match Jsonx.parse text with
  | Error msg -> Error (Printf.sprintf "status: %s" msg)
  | Ok json -> (
    try Ok (decode json)
    with Jsonx.Error msg -> Error (Printf.sprintf "status: %s" msg))

let of_file file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Printf.sprintf "status: %s" msg)
  | text -> of_json text
