(** Monotonic clock.

    Readings come from [clock_gettime(CLOCK_MONOTONIC)] through an
    allocation-free C stub and are expressed as nanoseconds since an
    arbitrary epoch (boot on Linux) in a plain OCaml [int] — 63 bits of
    nanoseconds is ~146 years, and avoiding [int64] keeps instrumented
    hot loops free of boxing. Differences between readings are immune to
    wall-clock adjustments, unlike [Unix.gettimeofday]. *)

external now_ns : unit -> int = "beast_obs_clock_ns" [@@noalloc]
(** Current monotonic time in nanoseconds. *)

val now_s : unit -> float
(** [now_ns] in seconds (monotonic, arbitrary epoch). *)

val ns_to_s : int -> float
val ns_to_us : int -> float

val elapsed_s : since:int -> float
(** Seconds elapsed since a previous [now_ns] reading. *)
