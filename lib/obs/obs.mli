(** The observability event model.

    A low-overhead tracing layer for the planning and enumeration
    pipeline: monotonic-clock spans, instant events and sampled counters
    flowing into a pluggable {!sink}. With no sink installed every
    emission helper reduces to a single load-and-branch on {!enabled},
    so instrumented hot paths stay within the engines' performance
    budget (measured in [bench/main.ml]).

    Events are tagged with the emitting domain's id; thread-safety of
    concurrent emission is the sink's responsibility ({!Recorder} keeps
    per-domain buffers and merges them when read). Install sinks before
    spawning domains. *)

type arg =
  | Int of int
  | Float of float
  | Str of string

type kind =
  | Begin  (** span opens; matched by an {!End} with the same name *)
  | End
  | Complete of int
      (** self-contained span with an explicit duration in ns —
          used for post-hoc aggregates (per-constraint cumulative
          time, per-level timings) *)
  | Instant
  | Counter of float  (** sampled value, e.g. points/second *)

type event = {
  ev_name : string;
  ev_cat : string;  (** category: "plan", "engine", "constraint", "level", ... *)
  ev_ts_ns : int;  (** monotonic timestamp ({!Clock.now_ns}) *)
  ev_dom : int;  (** emitting domain id *)
  ev_kind : kind;
  ev_args : (string * arg) list;
}

type sink = {
  emit : event -> unit;  (** may be called concurrently from domains *)
  flush : unit -> unit;
}

val null : sink
(** Drops everything. *)

val set_sink : ?fine:bool -> sink -> unit
(** Install a sink and enable tracing. [fine] (default [true]) also
    turns on {!instrumenting}, making engines compile their
    instrumented closures (per-constraint timings, per-level entry
    counts, periodic progress ticks). Pass [~fine:false] for a coarse
    consumer — the flight recorder on an otherwise plain run — that
    should only see the engine-level spans and instants the
    uninstrumented path emits, keeping the sweep at its plain speed. *)

val clear_sink : unit -> unit
(** Disable tracing, restore {!null}, and flush the old sink. *)

val enabled : unit -> bool

val emit : event -> unit
(** Forward a ready-made event; one branch when tracing is off. *)

val domain_id : unit -> int

(** {2 Emission helpers}

    All are no-ops (one branch, no allocation, no clock read) when
    tracing is disabled. *)

val span_begin : ?cat:string -> ?args:(string * arg) list -> string -> unit
val span_end : ?cat:string -> ?args:(string * arg) list -> string -> unit

val with_span :
  ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Wrap a computation in a balanced span; the end event is emitted even
    if the computation raises. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
val counter : ?cat:string -> string -> float -> unit

val complete :
  ?cat:string ->
  ?args:(string * arg) list ->
  ?ts:int ->
  dur_ns:int ->
  string ->
  unit
(** Emit a {!Complete} span; [ts] defaults to now (pass the run's start
    time to stack aggregate spans on one track). *)

(** {2 Progress hook}

    Orthogonal to tracing so progress reporting works without a trace
    sink. Engines call {!progress_tick} every few tens of thousands of
    loop iterations; [frac] is the completed fraction of the outermost
    loop when the engine can tell it, negative otherwise. *)

type progress_fn = dom:int -> points:int -> survivors:int -> frac:float -> unit

val set_progress : ?fine:bool -> progress_fn -> unit
(** [fine] mirrors {!set_sink}: with [~fine:false] the hook still
    receives each engine's end-of-run tick (once per chunk in parallel
    sweeps) but does not enable {!instrumenting} — how the status
    heartbeat stays within its overhead budget. *)

val clear_progress : unit -> unit
val progress_enabled : unit -> bool
val progress_tick : points:int -> survivors:int -> frac:float -> unit

(** {2 Chunk progress hook}

    Fed by the parallel scheduler once per {e completed} chunk — no
    per-point cost, so it needs no instrumented code path and is not
    part of {!instrumenting}. Completed/total chunk counts let the
    reporter derive a pruning-aware ETA from measured chunk throughput
    (dead regions finish their chunks fast and pull the estimate down)
    instead of raw point cardinality. *)

type chunk_fn = completed:int -> total:int -> unit

val set_chunk_progress : chunk_fn -> unit
val clear_chunk_progress : unit -> unit
val chunk_tick : completed:int -> total:int -> unit

val instrumenting : unit -> bool
(** Whether any {e fine-grained} consumer is live (a sink or a
    progress hook installed without [~fine:false]): engines consult
    this once per run to pick the instrumented code path. A coarse
    sink or hook leaves it off — the run stays at plain speed and the
    consumer sees only engine-level events and once-per-run ticks. *)

(** {2 Debug} *)

val arg_to_string : arg -> string
val kind_name : kind -> string
val pp_event : Format.formatter -> event -> unit
