(** In-memory trace recorder.

    The standard sink behind [--trace]: events are appended to
    per-domain buffers (domain-local, no lock on the emission path
    beyond the first event of each domain) and merged into one
    time-sorted stream when read — the "merge per-domain buffers at
    join" step of the parallel engine happens here, keyed on each
    event's domain tag. *)

type t

val create : unit -> t
val sink : t -> Obs.sink

val start_ns : t -> int
(** Monotonic time at recorder creation; the natural time origin for
    trace output. *)

val events : t -> Obs.event array
(** All recorded events, merged across domains, sorted by timestamp.
    Safe to call after every spawned domain has been joined. *)

val event_count : t -> int

val domains : t -> int list
(** Domain ids that emitted at least one event, ascending. *)
