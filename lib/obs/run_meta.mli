(** Run manifests: one small JSON file per instrumented run.

    A manifest is written into the runs directory when a run starts
    (status [Running]) and atomically rewritten at exit with the
    outcome, the process exit code and the wall time — so every
    artifact the run left behind (stats, checkpoint, trace, status
    file, flight dump) correlates through the run id, and a run that
    died can be told apart from one still executing.

    [beast runs] lists and inspects these files; the id itself is
    stamped into checkpoints, heartbeat status files, trace metadata
    and (on request) stats files. *)

type status =
  | Running
  | Completed
  | Interrupted  (** stopped by SIGINT/SIGTERM, resumable *)
  | Crashed  (** uncaught exception or injected fault *)

val status_name : status -> string
val status_of_name : string -> status option

type t = {
  run_id : string;
  space : string;
  shard : (int * int) option;  (** [(index, of)] when the run is sharded *)
  engine : string;  (** "parallel", "staged", ... *)
  pid : int;
  status : status;
  exit_code : int option;  (** set by {!finalize} *)
  wall_s : float option;  (** set by {!finalize} *)
}

val fresh_id : seed:string -> unit -> string
(** A 12-hex-char run id: MD5 of [seed] (content: space digest + shard
    coords) salted with a monotonic-clock nonce and the pid, so two
    shards of one sweep — or two runs of the same shard — never
    collide. *)

val make :
  run_id:string -> space:string -> ?shard:int * int -> engine:string ->
  unit -> t
(** A fresh [Running] manifest for this process. *)

val path : dir:string -> t -> string
(** [dir/<run_id>.json]. *)

val save : dir:string -> t -> unit
(** Write the manifest atomically (temp-then-rename), creating [dir]
    if needed. *)

val finalize :
  dir:string -> t -> status:status -> exit_code:int -> wall_s:float -> t
(** Rewrite with the final status; returns the finalized record. *)

val to_json : t -> string
val of_json : string -> (t, string) result
val of_file : string -> (t, string) result

val list : dir:string -> t list
(** All parseable manifests in [dir], sorted by run id. An absent
    directory is an empty list. *)

val entries : dir:string -> (string * (t, string) result) list
(** Every [*.json] file in [dir] with its parse outcome, path included,
    filename-sorted. Lets [beast runs]/[beast top] warn about (and
    [--prune] collect) unreadable manifests instead of silently
    dropping them; {!list} is the [Ok]-only projection. *)
