(** JSONL event log: one JSON object per line, one line per event.

    The schema is the {!Obs.event} record spelled out —
    [{"name":..,"cat":..,"kind":..,"ts_ns":..,"dom":..,("dur_ns"|"value")?,"args"?}] —
    grep/jq-friendly and stable for downstream tooling. *)

val write_event : Buffer.t -> Obs.event -> unit
val write : out_channel -> Obs.event array -> unit

val sink : out_channel -> Obs.sink
(** Streaming sink: each event is serialized and written under a mutex
    as it is emitted. Prefer {!Recorder} + {!write} unless you need the
    log to survive a crash mid-run. *)
