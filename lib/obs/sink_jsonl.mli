(** JSONL event log: one JSON object per line, one line per event.

    The schema is the {!Obs.event} record spelled out —
    [{"name":..,"cat":..,"kind":..,"ts_ns":..,"dom":..,("dur_ns"|"value")?,"args"?}] —
    grep/jq-friendly and stable for downstream tooling. *)

val write_event : Buffer.t -> Obs.event -> unit
val write : out_channel -> Obs.event array -> unit

val parse_line : string -> (Obs.event, string) result
(** Inverse of {!write_event}, for one line. *)

val read_file : string -> (Obs.event array, string) result
(** Read a whole JSONL trace back in emission order (blank lines are
    skipped; the error names the file and line). Cross-shard merging
    ([beast merge --traces]) reads per-shard logs through this. *)

val sink : out_channel -> Obs.sink
(** Streaming sink: each event is serialized and written under a mutex
    as it is emitted. Prefer {!Recorder} + {!write} unless you need the
    log to survive a crash mid-run. *)
