(** `beast report` rendering: percentile tables over a (possibly
    shard-merged) metrics snapshot. *)

val write : ?top:int -> Format.formatter -> Metrics.snapshot -> unit
(** Phase timings, top-[top] hot constraints by total evaluation time
    (default 10), per-depth loop entries, scheduler chunk-duration skew,
    then remaining counters/gauges. Prints a pointer at [--metrics] when
    the snapshot is empty. *)
