(** `beast report` rendering: percentile tables over a (possibly
    shard-merged) metrics snapshot. *)

val write : ?top:int -> Format.formatter -> Metrics.snapshot -> unit
(** Phase timings, top-[top] hot constraints by total evaluation time
    (default 10), per-depth loop entries, scheduler chunk-duration skew,
    then remaining counters/gauges. Prints a pointer at [--metrics] when
    the snapshot is empty. *)

val sparkline : float array -> string
(** One UTF-8 block glyph per value, scaled min-to-max over the series
    (["▁▂▅█"]); a constant series renders at mid height, an empty one
    as [""]. Used by [beast trends] timeline tables. *)
