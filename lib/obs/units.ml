(* Human-readable quantities for summaries and reports. Durations pick
   their unit per value (ns, us, ms, s) instead of a single fixed unit,
   so a 40 ns constraint check and a 12 s sweep both read naturally in
   the same table. *)

let duration_ns_f ns =
  if Float.is_nan ns then "nan"
  else
    let sign = if ns < 0.0 then "-" else "" in
    let ns = Float.abs ns in
    let render value unit_ =
      (* Three significant digits, dropping the decimals once the
         integer part fills them ("999ms", "42.3us", "1.50s"). *)
      let s =
        if value >= 100.0 then Printf.sprintf "%.0f" value
        else if value >= 10.0 then Printf.sprintf "%.1f" value
        else Printf.sprintf "%.2f" value
      in
      sign ^ s ^ unit_
    in
    if ns < 1e3 then sign ^ Printf.sprintf "%.0fns" ns
    else if ns < 1e6 then render (ns /. 1e3) "us"
    else if ns < 1e9 then render (ns /. 1e6) "ms"
    else render (ns /. 1e9) "s"

let duration_ns ns = duration_ns_f (float_of_int ns)

let si_int n =
  let f = float_of_int (abs n) in
  let sign = if n < 0 then "-" else "" in
  if abs n < 10_000 then string_of_int n
  else if f < 1e6 then sign ^ Printf.sprintf "%.1fk" (f /. 1e3)
  else if f < 1e9 then sign ^ Printf.sprintf "%.2fM" (f /. 1e6)
  else sign ^ Printf.sprintf "%.2fG" (f /. 1e9)

let float_g f =
  if Float.is_nan f then "nan"
  else if Float.is_integer f && Float.abs f < 1e7 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

let signed_pct f =
  if Float.is_nan f then "n/a" else Printf.sprintf "%+.1f%%" f
