(* Hand-rolled JSON emission shared by the JSONL and Chrome sinks (the
   repo deliberately has no JSON dependency). Only what we need:
   strings, ints, floats, and flat objects of event args. *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float buf f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    (* NaN/inf are not JSON; clamp to null. *)
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let arg buf (a : Obs.arg) =
  match a with
  | Obs.Int i -> Buffer.add_string buf (string_of_int i)
  | Obs.Float f -> float buf f
  | Obs.Str s -> escape buf s

let args_object buf (args : (string * Obs.arg) list) =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape buf k;
      Buffer.add_char buf ':';
      arg buf v)
    args;
  Buffer.add_char buf '}'
