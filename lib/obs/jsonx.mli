(** Minimal JSON reader shared by the tooling paths (stats files, JSONL
    traces, metrics snapshots, bench baselines).

    Parsing only — each serializer keeps its own deterministic writer.
    Integers and floats are distinct constructors so count fields
    round-trip exactly: a number parses to {!Float} iff its lexeme
    contains ['.'], ['e'] or ['E']. Strings carry the usual escapes;
    [\uXXXX] escapes decode to UTF-8 bytes, with surrogate pairs
    combined into the astral code point (lone surrogates are
    rejected), so event labels survive a JSONL round-trip whatever
    their alphabet. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

val parse : string -> (t, string) result
val parse_exn : string -> t
(** Raises {!Error} with an offset-tagged message. *)

(** {2 Accessors}

    All raise {!Error} naming the offending field; the [name] argument
    is only used in the error message. *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val to_int : string -> t -> int
val to_float : string -> t -> float
(** Accepts both {!Int} and {!Float}. *)

val to_str : string -> t -> string
val to_bool : string -> t -> bool
val to_list : string -> t -> t list
