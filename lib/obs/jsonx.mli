(** Minimal JSON reader and deterministic writer shared by the tooling
    paths (stats files, JSONL traces, metrics snapshots, bench
    baselines, the run archive).

    Integers and floats are distinct constructors so count fields
    round-trip exactly: a number parses to {!Float} iff its lexeme
    contains ['.'], ['e'] or ['E']. Integer lexemes that overflow the
    native 63-bit [int] degrade to {!Float} instead of failing; leading
    zeros are rejected per RFC 8259. Strings carry the usual escapes;
    [\uXXXX] escapes decode to UTF-8 bytes, with surrogate pairs
    combined into the astral code point (lone surrogates are
    rejected), so event labels survive a JSONL round-trip whatever
    their alphabet. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

val parse : string -> (t, string) result
val parse_exn : string -> t
(** Raises {!Error} with an offset-tagged message. *)

(** {2 Accessors}

    All raise {!Error} naming the offending field; the [name] argument
    is only used in the error message. *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val to_int : string -> t -> int
val to_float : string -> t -> float
(** Accepts both {!Int} and {!Float}. *)

val to_str : string -> t -> string
val to_bool : string -> t -> bool
val to_list : string -> t -> t list

(** {2 Writer}

    A fixed point of the parser: [write (parse_exn (to_string v))]
    emits the same bytes as [write v], which is what lets the archive
    content-address payloads by their canonical serialization.
    Integer-valued floats below 1e15 print without a fraction (and so
    reparse as {!Int}, printing identically); other floats use
    ["%.17g"], which round-trips doubles exactly; [-0.] normalizes to
    [0]; NaN and infinities print as [null]. Object member order is
    preserved as given. *)

val write : Buffer.t -> t -> unit
val to_string : t -> string
(** Compact single-line form, [", "]/[": "] separated. *)

val pretty : t -> string
(** Multi-line, two-space indent, scalar-only arrays kept on one line;
    ends with a newline. Used for committed baselines and archive
    records so diffs stay reviewable. *)
