(* Human-readable roll-up of a recorded trace: top constraints by
   cumulative evaluation time and by firings (and by points removed when
   funnel attribution events are present), per-level loop timings, span
   totals and counter statistics. Aggregation is by event name, summed
   across domains. *)

type acc = {
  mutable a_time_ns : int;
  mutable a_count : int;
  mutable a_fired : int;
  mutable a_removed : int;
  mutable a_entries : int;
  mutable a_depth : int;
}

let get tbl name =
  match Hashtbl.find_opt tbl name with
  | Some a -> a
  | None ->
    let a =
      {
        a_time_ns = 0;
        a_count = 0;
        a_fired = 0;
        a_removed = 0;
        a_entries = 0;
        a_depth = -1;
      }
    in
    Hashtbl.replace tbl name a;
    a

let int_arg args name =
  match List.assoc_opt name args with
  | Some (Obs.Int i) -> Some i
  | _ -> None

let rows tbl = Hashtbl.fold (fun name a acc -> (name, a) :: acc) tbl []

let top ~by ~n rows =
  List.filteri (fun i _ -> i < n)
    (List.sort (fun (_, a) (_, b) -> compare (by b) (by a)) rows)

let write ?(top_n = 10) ppf (events : Obs.event array) =
  let constraints = Hashtbl.create 16 in
  let levels = Hashtbl.create 16 in
  let spans = Hashtbl.create 16 in
  (* Per-domain stacks of (name, ts) match Begin/End pairs. *)
  let stacks : (int, (string * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let counters = Hashtbl.create 16 in
  Array.iter
    (fun ev ->
      let name = ev.Obs.ev_name and args = ev.Obs.ev_args in
      match ev.Obs.ev_kind with
      | Obs.Complete dur when ev.Obs.ev_cat = "constraint" ->
        let a = get constraints name in
        a.a_time_ns <- a.a_time_ns + dur;
        a.a_count <- a.a_count + 1;
        Option.iter (fun k -> a.a_fired <- a.a_fired + k) (int_arg args "fired")
      | Obs.Complete dur when ev.Obs.ev_cat = "level" ->
        let a = get levels name in
        a.a_time_ns <- a.a_time_ns + dur;
        Option.iter
          (fun k -> a.a_entries <- a.a_entries + k)
          (int_arg args "entries");
        Option.iter (fun d -> a.a_depth <- d) (int_arg args "depth")
      | Obs.Instant when ev.Obs.ev_cat = "funnel" ->
        let a = get constraints name in
        Option.iter (fun k -> a.a_removed <- a.a_removed + k)
          (int_arg args "removed");
        Option.iter (fun k -> a.a_fired <- max a.a_fired k)
          (int_arg args "fired")
      | Obs.Begin ->
        let stack =
          match Hashtbl.find_opt stacks ev.Obs.ev_dom with
          | Some s -> s
          | None ->
            let s = ref [] in
            Hashtbl.replace stacks ev.Obs.ev_dom s;
            s
        in
        stack := (name, ev.Obs.ev_ts_ns) :: !stack
      | Obs.End -> (
        match Hashtbl.find_opt stacks ev.Obs.ev_dom with
        | Some ({ contents = (n, t0) :: rest } as stack) when n = name ->
          stack := rest;
          let a = get spans name in
          a.a_time_ns <- a.a_time_ns + (ev.Obs.ev_ts_ns - t0);
          a.a_count <- a.a_count + 1
        | _ -> ())
      | Obs.Counter v ->
        let sum, n, mx =
          match Hashtbl.find_opt counters name with
          | Some (s, n, m) -> (s, n, m)
          | None -> (0.0, 0, neg_infinity)
        in
        Hashtbl.replace counters name (sum +. v, n + 1, Float.max mx v)
      | Obs.Complete _ | Obs.Instant -> ())
    events;
  let open Format in
  fprintf ppf "=== trace summary (%d events) ===@\n" (Array.length events);
  let span_rows = rows spans in
  if span_rows <> [] then begin
    fprintf ppf "@\nspans (wall time, all domains):@\n";
    List.iter
      (fun (name, a) ->
        fprintf ppf "  %-32s %10s  x%d@\n" name
          (Units.duration_ns a.a_time_ns)
          a.a_count)
      (List.sort (fun (_, a) (_, b) -> compare b.a_time_ns a.a_time_ns)
         span_rows)
  end;
  let c_rows = rows constraints in
  if c_rows <> [] then begin
    fprintf ppf "@\ntop constraints by cumulative evaluation time:@\n";
    List.iter
      (fun (name, a) ->
        fprintf ppf "  %-32s %10s  fired %d@\n" name
          (Units.duration_ns a.a_time_ns)
          a.a_fired)
      (top ~by:(fun a -> a.a_time_ns) ~n:top_n c_rows);
    fprintf ppf "@\ntop constraints by firings:@\n";
    List.iter
      (fun (name, a) -> fprintf ppf "  %-32s fired %d@\n" name a.a_fired)
      (top ~by:(fun a -> a.a_fired) ~n:top_n c_rows);
    if List.exists (fun (_, a) -> a.a_removed > 0) c_rows then begin
      fprintf ppf "@\ntop constraints by points removed (funnel attribution):@\n";
      List.iter
        (fun (name, a) -> fprintf ppf "  %-32s removed %d@\n" name a.a_removed)
        (top ~by:(fun a -> a.a_removed) ~n:top_n c_rows)
    end
  end;
  let l_rows = rows levels in
  if l_rows <> [] then begin
    fprintf ppf "@\nloop levels (cumulative time inside level and below):@\n";
    List.iter
      (fun (name, a) ->
        fprintf ppf "  L%-2d %-28s %10s  %d entries@\n" a.a_depth name
          (Units.duration_ns a.a_time_ns)
          a.a_entries)
      (List.sort (fun (_, a) (_, b) -> compare a.a_depth b.a_depth) l_rows)
  end;
  let counter_rows = rows counters |> List.map (fun (n, _) -> n) in
  if counter_rows <> [] then begin
    fprintf ppf "@\ncounters:@\n";
    List.iter
      (fun name ->
        let sum, n, mx = Hashtbl.find counters name in
        fprintf ppf "  %-32s mean %.3g  max %.3g  (%d samples)@\n" name
          (sum /. float_of_int (max 1 n))
          mx n)
      (List.sort String.compare counter_rows)
  end;
  pp_print_flush ppf ()

let to_string ?top_n events =
  let buf = Buffer.create 2048 in
  let ppf = Format.formatter_of_buffer buf in
  write ?top_n ppf events;
  Buffer.contents buf
