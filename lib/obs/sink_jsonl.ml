let write_event buf (ev : Obs.event) =
  Buffer.add_string buf "{\"name\":";
  Trace_json.escape buf ev.Obs.ev_name;
  Buffer.add_string buf ",\"cat\":";
  Trace_json.escape buf ev.Obs.ev_cat;
  Buffer.add_string buf ",\"kind\":";
  Trace_json.escape buf (Obs.kind_name ev.Obs.ev_kind);
  Buffer.add_string buf (Printf.sprintf ",\"ts_ns\":%d" ev.Obs.ev_ts_ns);
  Buffer.add_string buf (Printf.sprintf ",\"dom\":%d" ev.Obs.ev_dom);
  (match ev.Obs.ev_kind with
  | Obs.Complete dur -> Buffer.add_string buf (Printf.sprintf ",\"dur_ns\":%d" dur)
  | Obs.Counter v ->
    Buffer.add_string buf ",\"value\":";
    Trace_json.float buf v
  | Obs.Begin | Obs.End | Obs.Instant -> ());
  if ev.Obs.ev_args <> [] then begin
    Buffer.add_string buf ",\"args\":";
    Trace_json.args_object buf ev.Obs.ev_args
  end;
  Buffer.add_string buf "}\n"

let write oc events =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun ev ->
      Buffer.clear buf;
      write_event buf ev;
      Buffer.output_buffer oc buf)
    events

(* ------------------------------------------------------------------ *)
(* Reading the log back (cross-shard trace merge)                      *)
(* ------------------------------------------------------------------ *)

let arg_of_jsonx = function
  | Jsonx.Int i -> Obs.Int i
  | Jsonx.Float f -> Obs.Float f
  | Jsonx.Str s -> Obs.Str s
  | Jsonx.Bool b -> Obs.Str (string_of_bool b)
  | Jsonx.Null -> Obs.Str "null"
  | Jsonx.Arr _ | Jsonx.Obj _ ->
    raise (Jsonx.Error "args: nested values unsupported")

let event_of_jsonx row =
  let kind =
    match Jsonx.to_str "kind" (Jsonx.member "kind" row) with
    | "begin" -> Obs.Begin
    | "end" -> Obs.End
    | "complete" ->
      Obs.Complete (Jsonx.to_int "dur_ns" (Jsonx.member "dur_ns" row))
    | "instant" -> Obs.Instant
    | "counter" ->
      Obs.Counter (Jsonx.to_float "value" (Jsonx.member "value" row))
    | other -> raise (Jsonx.Error (Printf.sprintf "unknown kind %S" other))
  in
  let args =
    match Jsonx.member_opt "args" row with
    | Some (Jsonx.Obj kvs) -> List.map (fun (k, v) -> (k, arg_of_jsonx v)) kvs
    | Some _ -> raise (Jsonx.Error "args: expected an object")
    | None -> []
  in
  {
    Obs.ev_name = Jsonx.to_str "name" (Jsonx.member "name" row);
    ev_cat = Jsonx.to_str "cat" (Jsonx.member "cat" row);
    ev_ts_ns = Jsonx.to_int "ts_ns" (Jsonx.member "ts_ns" row);
    ev_dom = Jsonx.to_int "dom" (Jsonx.member "dom" row);
    ev_kind = kind;
    ev_args = args;
  }

let parse_line line =
  match Jsonx.parse line with
  | Error msg -> Error msg
  | Ok row -> (
    match event_of_jsonx row with
    | ev -> Ok ev
    | exception Jsonx.Error msg -> Error msg)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let events = ref [] in
      let lineno = ref 0 in
      match
        try
          while true do
            let line = input_line ic in
            incr lineno;
            if String.trim line <> "" then
              match parse_line line with
              | Ok ev -> events := ev :: !events
              | Error msg ->
                raise
                  (Jsonx.Error (Printf.sprintf "%s:%d: %s" path !lineno msg))
          done
        with End_of_file -> ()
      with
      | () -> Ok (Array.of_list (List.rev !events))
      | exception Jsonx.Error msg -> Error msg)

(* Streaming variant: events hit the channel as they are emitted (useful
   when a run may not reach an orderly shutdown). Emission is serialized
   with a mutex, so this sink is slower than {!Recorder} under the
   parallel engine. *)
let sink oc =
  let mutex = Mutex.create () in
  let buf = Buffer.create 512 in
  let emit ev =
    Mutex.lock mutex;
    Buffer.clear buf;
    write_event buf ev;
    Buffer.output_buffer oc buf;
    Mutex.unlock mutex
  in
  let flush () =
    Mutex.lock mutex;
    flush oc;
    Mutex.unlock mutex
  in
  { Obs.emit; flush }
