let write_event buf (ev : Obs.event) =
  Buffer.add_string buf "{\"name\":";
  Trace_json.escape buf ev.Obs.ev_name;
  Buffer.add_string buf ",\"cat\":";
  Trace_json.escape buf ev.Obs.ev_cat;
  Buffer.add_string buf ",\"kind\":";
  Trace_json.escape buf (Obs.kind_name ev.Obs.ev_kind);
  Buffer.add_string buf (Printf.sprintf ",\"ts_ns\":%d" ev.Obs.ev_ts_ns);
  Buffer.add_string buf (Printf.sprintf ",\"dom\":%d" ev.Obs.ev_dom);
  (match ev.Obs.ev_kind with
  | Obs.Complete dur -> Buffer.add_string buf (Printf.sprintf ",\"dur_ns\":%d" dur)
  | Obs.Counter v ->
    Buffer.add_string buf ",\"value\":";
    Trace_json.float buf v
  | Obs.Begin | Obs.End | Obs.Instant -> ());
  if ev.Obs.ev_args <> [] then begin
    Buffer.add_string buf ",\"args\":";
    Trace_json.args_object buf ev.Obs.ev_args
  end;
  Buffer.add_string buf "}\n"

let write oc events =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun ev ->
      Buffer.clear buf;
      write_event buf ev;
      Buffer.output_buffer oc buf)
    events

(* Streaming variant: events hit the channel as they are emitted (useful
   when a run may not reach an orderly shutdown). Emission is serialized
   with a mutex, so this sink is slower than {!Recorder} under the
   parallel engine. *)
let sink oc =
  let mutex = Mutex.create () in
  let buf = Buffer.create 512 in
  let emit ev =
    Mutex.lock mutex;
    Buffer.clear buf;
    write_event buf ev;
    Buffer.output_buffer oc buf;
    Mutex.unlock mutex
  in
  let flush () =
    Mutex.lock mutex;
    flush oc;
    Mutex.unlock mutex
  in
  { Obs.emit; flush }
