(* Throttled progress line for long enumerations. Engines tick through
   Obs.progress_tick from whichever domain is sweeping; the reporter
   keeps the latest per-domain figures, sums them, and redraws a
   carriage-return line at most every [interval_s] seconds.

   When the output channel is not a tty (CI logs, redirected stderr) the
   carriage-return redraw would smear into one unreadable megaline, so
   the reporter instead prints ordinary newline-terminated lines at a
   slower default cadence. *)

type dom_state = {
  mutable d_points : int;
  mutable d_survivors : int;
  mutable d_frac : float;  (* < 0 when unknown *)
}

type t = {
  mutex : Mutex.t;
  doms : (int, dom_state) Hashtbl.t;
  out : out_channel;
  tty : bool;
  interval_ns : int;
  total : int option;  (* raw-cardinality estimate, for a fallback ETA *)
  start_ns : int;
  mutable last_render_ns : int;
  mutable last_width : int;
  mutable rendered : bool;
  (* Chunk-completion figures from the parallel scheduler. [c_base] is
     the completed count at the first tick: a resumed run starts with
     its checkpointed chunks already done, and those must not count as
     throughput observed this run. *)
  mutable c_done : int;
  mutable c_total : int;
  mutable c_base : int;
}

let create ?interval_s ?total ?(out = stderr) ?tty () =
  let tty =
    match tty with
    | Some b -> b
    | None -> ( try Unix.isatty (Unix.descr_of_out_channel out) with _ -> false)
  in
  let interval_s =
    match interval_s with Some s -> s | None -> if tty then 0.2 else 2.0
  in
  {
    mutex = Mutex.create ();
    doms = Hashtbl.create 8;
    out;
    tty;
    interval_ns = int_of_float (interval_s *. 1e9);
    total;
    start_ns = Clock.now_ns ();
    last_render_ns = 0;
    last_width = 0;
    rendered = false;
    c_done = 0;
    c_total = 0;
    c_base = -1;
  }

let si = Units.si_int

let totals t =
  Hashtbl.fold
    (fun _ d (pts, srv, fracs, nfrac) ->
      ( pts + d.d_points,
        srv + d.d_survivors,
        (if d.d_frac >= 0.0 then fracs +. d.d_frac else fracs),
        if d.d_frac >= 0.0 then nfrac + 1 else nfrac ))
    t.doms (0, 0, 0.0, 0)

let line t ~now =
  let points, survivors, frac_sum, n_frac = totals t in
  let elapsed = Clock.ns_to_s (now - t.start_ns) in
  let rate = if elapsed > 0.0 then float_of_int points /. elapsed else 0.0 in
  let frac =
    if t.c_total > 0 then
      Some (float_of_int t.c_done /. float_of_int t.c_total)
    else if n_frac > 0 then Some (frac_sum /. float_of_int n_frac)
    else
      match t.total with
      | Some total when total > 0 ->
        Some (float_of_int points /. float_of_int total)
      | _ -> None
  in
  (* Prefer the chunk-weighted estimate: remaining work is priced at the
     mean wall time of the chunks completed *this run* (c_base excludes
     chunks restored from a checkpoint), so heavily pruned regions —
     whose chunks fly by — shrink the ETA the way raw point cardinality
     never can. *)
  let eta_s =
    let observed = t.c_done - max 0 t.c_base in
    if t.c_total > 0 && observed > 0 && elapsed > 0.0 then
      Some
        (elapsed *. float_of_int (t.c_total - t.c_done)
        /. float_of_int observed)
    else
      match frac with
      | Some f when f > 1e-6 && f <= 1.0 -> Some (elapsed *. ((1.0 /. f) -. 1.0))
      | _ -> None
  in
  let eta =
    match eta_s with
    | Some s -> Printf.sprintf "  eta %.1fs" s
    | None -> ""
  in
  let pct =
    match frac with
    | Some f -> Printf.sprintf "  %5.1f%%" (100.0 *. Float.min 1.0 f)
    | None -> ""
  in
  let chunks =
    if t.c_total > 0 then Printf.sprintf "  %d/%d chunks" t.c_done t.c_total
    else ""
  in
  Printf.sprintf "[beast] %s points  %s survivors  %s pts/s  %.1fs%s%s%s"
    (si points) (si survivors) (si (int_of_float rate)) elapsed chunks pct eta

let render t ~now =
  let s = line t ~now in
  if t.tty then begin
    let pad = max 0 (t.last_width - String.length s) in
    output_string t.out ("\r" ^ s ^ String.make pad ' ');
    t.last_width <- String.length s
  end
  else output_string t.out (s ^ "\n");
  flush t.out;
  t.rendered <- true;
  t.last_render_ns <- now

let tick t ~dom ~points ~survivors ~frac =
  Mutex.lock t.mutex;
  let d =
    match Hashtbl.find_opt t.doms dom with
    | Some d -> d
    | None ->
      let d = { d_points = 0; d_survivors = 0; d_frac = -1.0 } in
      Hashtbl.replace t.doms dom d;
      d
  in
  d.d_points <- points;
  d.d_survivors <- survivors;
  d.d_frac <- frac;
  let now = Clock.now_ns () in
  if now - t.last_render_ns >= t.interval_ns then render t ~now;
  Mutex.unlock t.mutex

let chunk_tick t ~completed ~total =
  Mutex.lock t.mutex;
  if t.c_base < 0 then t.c_base <- completed;
  (* Ticks from different domains can land out of order; the count only
     ever grows. *)
  t.c_done <- max t.c_done completed;
  t.c_total <- total;
  let now = Clock.now_ns () in
  if now - t.last_render_ns >= t.interval_ns then render t ~now;
  Mutex.unlock t.mutex

let install t =
  Obs.set_progress (tick t);
  Obs.set_chunk_progress (chunk_tick t)

let finish t =
  Obs.clear_progress ();
  Obs.clear_chunk_progress ();
  Mutex.lock t.mutex;
  if t.rendered then begin
    render t ~now:(Clock.now_ns ());
    if t.tty then output_string t.out "\n";
    flush t.out
  end;
  Mutex.unlock t.mutex
