(* Throttled progress line for long enumerations. Engines tick through
   Obs.progress_tick from whichever domain is sweeping; the reporter
   keeps the latest per-domain figures, sums them, and redraws a
   carriage-return line at most every [interval_s] seconds.

   When the output channel is not a tty (CI logs, redirected stderr) the
   carriage-return redraw would smear into one unreadable megaline, so
   the reporter instead prints ordinary newline-terminated lines at a
   slower default cadence. *)

type dom_state = {
  mutable d_points : int;
  mutable d_survivors : int;
  mutable d_frac : float;  (* < 0 when unknown *)
}

type t = {
  mutex : Mutex.t;
  doms : (int, dom_state) Hashtbl.t;
  out : out_channel;
  tty : bool;
  interval_ns : int;
  total : int option;  (* raw-cardinality estimate, for a fallback ETA *)
  start_ns : int;
  mutable last_render_ns : int;
  mutable last_width : int;
  mutable rendered : bool;
}

let create ?interval_s ?total ?(out = stderr) ?tty () =
  let tty =
    match tty with
    | Some b -> b
    | None -> ( try Unix.isatty (Unix.descr_of_out_channel out) with _ -> false)
  in
  let interval_s =
    match interval_s with Some s -> s | None -> if tty then 0.2 else 2.0
  in
  {
    mutex = Mutex.create ();
    doms = Hashtbl.create 8;
    out;
    tty;
    interval_ns = int_of_float (interval_s *. 1e9);
    total;
    start_ns = Clock.now_ns ();
    last_render_ns = 0;
    last_width = 0;
    rendered = false;
  }

let si = Units.si_int

let totals t =
  Hashtbl.fold
    (fun _ d (pts, srv, fracs, nfrac) ->
      ( pts + d.d_points,
        srv + d.d_survivors,
        (if d.d_frac >= 0.0 then fracs +. d.d_frac else fracs),
        if d.d_frac >= 0.0 then nfrac + 1 else nfrac ))
    t.doms (0, 0, 0.0, 0)

let line t ~now =
  let points, survivors, frac_sum, n_frac = totals t in
  let elapsed = Clock.ns_to_s (now - t.start_ns) in
  let rate = if elapsed > 0.0 then float_of_int points /. elapsed else 0.0 in
  let frac =
    if n_frac > 0 then Some (frac_sum /. float_of_int n_frac)
    else
      match t.total with
      | Some total when total > 0 ->
        Some (float_of_int points /. float_of_int total)
      | _ -> None
  in
  let eta =
    match frac with
    | Some f when f > 1e-6 && f <= 1.0 ->
      Printf.sprintf "  eta %.1fs" (elapsed *. ((1.0 /. f) -. 1.0))
    | _ -> ""
  in
  let pct =
    match frac with
    | Some f -> Printf.sprintf "  %5.1f%%" (100.0 *. Float.min 1.0 f)
    | None -> ""
  in
  Printf.sprintf "[beast] %s points  %s survivors  %s pts/s  %.1fs%s%s"
    (si points) (si survivors) (si (int_of_float rate)) elapsed pct eta

let render t ~now =
  let s = line t ~now in
  if t.tty then begin
    let pad = max 0 (t.last_width - String.length s) in
    output_string t.out ("\r" ^ s ^ String.make pad ' ');
    t.last_width <- String.length s
  end
  else output_string t.out (s ^ "\n");
  flush t.out;
  t.rendered <- true;
  t.last_render_ns <- now

let tick t ~dom ~points ~survivors ~frac =
  Mutex.lock t.mutex;
  let d =
    match Hashtbl.find_opt t.doms dom with
    | Some d -> d
    | None ->
      let d = { d_points = 0; d_survivors = 0; d_frac = -1.0 } in
      Hashtbl.replace t.doms dom d;
      d
  in
  d.d_points <- points;
  d.d_survivors <- survivors;
  d.d_frac <- frac;
  let now = Clock.now_ns () in
  if now - t.last_render_ns >= t.interval_ns then render t ~now;
  Mutex.unlock t.mutex

let install t = Obs.set_progress (tick t)

let finish t =
  Obs.clear_progress ();
  Mutex.lock t.mutex;
  if t.rendered then begin
    render t ~now:(Clock.now_ns ());
    if t.tty then output_string t.out "\n";
    flush t.out
  end;
  Mutex.unlock t.mutex
