(** Per-value unit formatting for reports and trace summaries. *)

val duration_ns : int -> string
(** Render a nanosecond duration with the unit picked per value:
    ["740ns"], ["42.3us"], ["1.50ms"], ["12.0s"]. Three significant
    digits above the nanosecond range. *)

val duration_ns_f : float -> string
(** Same for fractional nanoseconds (histogram quantile estimates). *)

val si_int : int -> string
(** Compact count: ["9500"], ["10.5k"], ["1.25M"], ["3.10G"]. *)

val float_g : float -> string
(** Unitless archive-series value: integers below 1e7 print exactly
    (["2080"]), everything else at four significant digits
    (["0.002752"], ["1.234e+09"]). *)

val signed_pct : float -> string
(** Signed relative delta for diff tables: ["+5.3%"], ["-0.8%"];
    ["n/a"] for NaN (no baseline to divide by). *)
