(** Dependency-free metrics registry: histograms, counters, gauges.

    Histograms are log-bucketed (HDR scheme): each power-of-two octave
    is split into [sub = 8] sub-buckets, so recording is constant-time
    (highest-set-bit plus two increments) and the relative bucket width
    is at most 1/8. The bucket grid is fixed and value-independent,
    which makes bucket-wise addition of two histograms exactly the
    histogram of the pooled samples — shard merges are lossless.

    Recording writes into per-domain cells (no locks on the hot path,
    same pattern as {!Recorder}); the registry mutex is only taken on a
    domain's first touch of a metric and when snapshotting. *)

(** {2 Bucket grid} *)

val sub : int
(** Sub-buckets per power-of-two octave (8). *)

val n_buckets : int

val bucket_of_value : int -> int
(** Constant-time bucket index for a non-negative value. *)

val bucket_bounds : int -> int * int
(** Half-open value range [\[lo, hi)] covered by a bucket index. *)

(** {2 Live metrics} *)

type histogram
type counter
type gauge

val record : histogram -> int -> unit
(** Record one sample. Negative values clamp to 0. *)

val add : counter -> int -> unit
val incr : counter -> unit
val set_gauge : gauge -> float -> unit

(** {2 Registry} *)

type t

val create : unit -> t

val histogram :
  t -> ?unit_:string -> name:string -> labels:(string * string) list ->
  unit -> histogram
(** Get-or-create, keyed by [name] plus sorted [labels]. Raises
    [Invalid_argument] if the key already names a different metric
    kind. *)

val counter :
  t -> ?unit_:string -> name:string -> labels:(string * string) list ->
  unit -> counter

val gauge :
  t -> ?unit_:string -> name:string -> labels:(string * string) list ->
  unit -> gauge

(** {2 Global installation}

    Mirrors {!Obs}'s sink switch: hot paths check {!enabled} (or resolve
    their handles) once per run, so a disabled registry costs one ref
    read. *)

val set_current : t -> unit
val clear_current : unit -> unit
val current : unit -> t option
val enabled : unit -> bool

val time_phase : string -> (unit -> 'a) -> 'a
(** [time_phase name f] runs [f] and records its wall time into the
    [phase_ns{phase=name}] histogram of the current registry (no-op
    when none is installed). *)

(** {2 Snapshots} *)

type hist_snapshot = {
  s_sub : int;  (** sub-buckets per octave, for merge compatibility *)
  s_count : int;
  s_sum : int;
  s_buckets : (int * int) list;
      (** sparse (bucket index, count), index-sorted, counts > 0 *)
}

type mvalue =
  | Vhist of hist_snapshot
  | Vcounter of int
  | Vgauge of float

type item = {
  name : string;
  labels : (string * string) list;  (** sorted by label name *)
  unit_ : string;  (** [""] when unspecified *)
  value : mvalue;
}

type snapshot = item list
(** Sorted by (name, labels); deterministic for a given set of recorded
    values. *)

val snapshot : t -> snapshot

module Snapshot : sig
  type t = snapshot

  val empty : t
  val equal : t -> t -> bool

  (** {3 Statistics} *)

  val quantile : hist_snapshot -> float -> float
  (** Interpolated quantile estimate ([0.] = min bound, [1.] = max);
      [nan] on an empty histogram. Error bounded by the bucket width
      (<= 12.5% relative). *)

  val mean : hist_snapshot -> float
  (** Exact ([s_sum/s_count]); [nan] on an empty histogram. *)

  val max_bound : hist_snapshot -> int
  (** Upper bound of the highest occupied bucket (0 when empty). *)

  (** {3 Merging} *)

  val merge : t list -> (t, string) result
  (** Union by (name, labels): histogram buckets and counters add —
      for histograms this is exactly the pooled-sample histogram;
      gauges keep the maximum. Errors on kind or bucket-grid
      mismatches. *)

  (** {3 Selection} *)

  val find : t -> name:string -> labels:(string * string) list -> item option
  val histograms : t -> name:string -> ((string * string) list * hist_snapshot) list

  (** {3 Serialization} *)

  val add_json : Buffer.t -> ?indent:string -> t -> unit
  (** Deterministic JSON array of items (sorted items, sorted labels,
      fixed key order); [indent] prefixes the per-item lines so the
      block nests inside an outer layout. *)

  val to_json : t -> string
  val of_json : string -> (t, string) result
  val of_jsonx : Jsonx.t -> (t, string) result

  val to_prometheus : t -> string
  (** Prometheus text exposition: cumulative [_bucket{le=...}] series
      plus [_sum]/[_count] for histograms. *)
end
