type arg =
  | Int of int
  | Float of float
  | Str of string

type kind =
  | Begin
  | End
  | Complete of int  (* duration, ns *)
  | Instant
  | Counter of float

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : int;
  ev_dom : int;
  ev_kind : kind;
  ev_args : (string * arg) list;
}

type sink = {
  emit : event -> unit;
  flush : unit -> unit;
}

let null = { emit = ignore; flush = ignore }

(* The hot-path contract: instrumented code guards every emission (and
   every clock read feeding one) behind [enabled ()], so with no sink
   installed the cost is a single load-and-branch. The refs are shared
   across domains; plain loads/stores of immediate values cannot tear,
   and installation is expected to happen before domains are spawned. *)
let current = ref null
let on = ref false

(* Whether a consumer wants the *fine-grained* event stream. Engines
   compile instrumented closures (per-constraint timings, per-level
   entry counts, periodic progress ticks) only when this is set: a
   coarse sink — the flight recorder riding along on an otherwise
   plain run — still receives the engine-level spans and instants the
   uninstrumented path emits, without making the sweep pay for
   full tracing. *)
let fine_on = ref false

let set_sink ?(fine = true) s =
  current := s;
  fine_on := fine;
  on := true

let clear_sink () =
  let s = !current in
  on := false;
  fine_on := false;
  current := null;
  s.flush ()

let enabled () = !on

let domain_id () = (Domain.self () :> int)

let emit ev = if !on then !current.emit ev

let make ?(cat = "") ?(args = []) kind name =
  {
    ev_name = name;
    ev_cat = cat;
    ev_ts_ns = Clock.now_ns ();
    ev_dom = domain_id ();
    ev_kind = kind;
    ev_args = args;
  }

let span_begin ?cat ?args name = if !on then !current.emit (make ?cat ?args Begin name)
let span_end ?cat ?args name = if !on then !current.emit (make ?cat ?args End name)

let with_span ?cat ?args name f =
  if not !on then f ()
  else begin
    span_begin ?cat ?args name;
    Fun.protect ~finally:(fun () -> span_end ?cat name) f
  end

let instant ?cat ?args name = if !on then !current.emit (make ?cat ?args Instant name)

let counter ?cat name v =
  if !on then !current.emit (make ?cat (Counter v) name)

let complete ?cat ?args ?ts ~dur_ns name =
  if !on then begin
    let ev = make ?cat ?args (Complete dur_ns) name in
    let ev =
      match ts with
      | None -> ev
      | Some ts -> { ev with ev_ts_ns = ts }
    in
    !current.emit ev
  end

(* ------------------------------------------------------------------ *)
(* Progress hook                                                       *)
(* ------------------------------------------------------------------ *)

(* Orthogonal to tracing so `--progress` works without a trace sink.
   Engines sample every few tens of thousands of loop iterations and
   call [progress_tick]; [frac] is the fraction of the outermost loop
   completed when the engine can tell, negative otherwise. *)

type progress_fn = dom:int -> points:int -> survivors:int -> frac:float -> unit

let progress : progress_fn option ref = ref None
let progress_on = ref false

(* [fine] mirrors {!set_sink}: a coarse hook (the status heartbeat)
   still receives the once-per-run ticks every engine emits at the end
   of a sweep or chunk, but does not push the engines onto their
   instrumented compiled path for intra-run sampling. *)
let set_progress ?(fine = true) f =
  progress := Some f;
  if fine then progress_on := true

let clear_progress () =
  progress_on := false;
  progress := None

let progress_enabled () = !progress_on

let progress_tick ~points ~survivors ~frac =
  match !progress with
  | None -> ()
  | Some f -> f ~dom:(domain_id ()) ~points ~survivors ~frac

(* Chunk-level progress, fed by the parallel scheduler once per
   completed chunk (so no per-point cost and no instrumentation
   requirement): completed/total chunk counts let the reporter derive a
   pruning-aware ETA from measured chunk throughput instead of raw
   point cardinality. *)

type chunk_fn = completed:int -> total:int -> unit

let chunk_progress : chunk_fn option ref = ref None

let set_chunk_progress f = chunk_progress := Some f
let clear_chunk_progress () = chunk_progress := None

let chunk_tick ~completed ~total =
  match !chunk_progress with
  | None -> ()
  | Some f -> f ~completed ~total

let instrumenting () = !fine_on || !progress_on

(* ------------------------------------------------------------------ *)
(* Pretty-printing (debug convenience)                                 *)
(* ------------------------------------------------------------------ *)

let arg_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let kind_name = function
  | Begin -> "begin"
  | End -> "end"
  | Complete _ -> "complete"
  | Instant -> "instant"
  | Counter _ -> "counter"

let pp_event ppf ev =
  Format.fprintf ppf "[%d] %s %s/%s @@%dns" ev.ev_dom (kind_name ev.ev_kind)
    ev.ev_cat ev.ev_name ev.ev_ts_ns;
  (match ev.ev_kind with
  | Complete dur -> Format.fprintf ppf " dur=%dns" dur
  | Counter v -> Format.fprintf ppf " value=%g" v
  | Begin | End | Instant -> ());
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%s" k (arg_to_string v))
    ev.ev_args
