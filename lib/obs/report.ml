(* Render a metrics snapshot as the `beast report` tables: phase
   timings, top-k hot constraints by total evaluation time, loop-entry
   counts per depth, and chunk-duration skew for the work-stealing
   scheduler. Everything here reads the merged snapshot, so the same
   code reports a single run or a recombined shard fleet. *)

let pct = [ (0.50, "p50"); (0.95, "p95"); (0.99, "p99") ]

(* Eight block glyphs, min-to-max scaled per series. A flat series
   renders mid-height so "no movement" looks calm, not empty. *)
let sparkline values =
  let n = Array.length values in
  if n = 0 then ""
  else begin
    let blocks =
      [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
         "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]
    in
    let lo = Array.fold_left min values.(0) values in
    let hi = Array.fold_left max values.(0) values in
    let buf = Buffer.create (n * 3) in
    Array.iter
      (fun v ->
        let idx =
          if hi = lo || Float.is_nan v then 3
          else
            let scaled = (v -. lo) /. (hi -. lo) *. 7.0 in
            max 0 (min 7 (int_of_float (Float.round scaled)))
        in
        Buffer.add_string buf blocks.(idx))
      values;
    Buffer.contents buf
  end

let label snap key =
  match List.assoc_opt key snap with Some v -> v | None -> "?"

let hist_row ppf ~name (h : Metrics.hist_snapshot) =
  Format.fprintf ppf "  %-32s %10s %9s" name
    (Units.si_int h.s_count)
    (Units.duration_ns h.s_sum);
  List.iter
    (fun (q, _) ->
      Format.fprintf ppf " %9s"
        (Units.duration_ns_f (Metrics.Snapshot.quantile h q)))
    pct;
  Format.fprintf ppf " %9s@."
    (Units.duration_ns_f (Metrics.Snapshot.mean h))

let hist_header ppf title =
  Format.fprintf ppf "%s@." title;
  Format.fprintf ppf "  %-32s %10s %9s" "" "count" "total";
  List.iter (fun (_, n) -> Format.fprintf ppf " %9s" n) pct;
  Format.fprintf ppf " %9s@." "mean"

let write ?(top = 10) ppf (snap : Metrics.snapshot) =
  if snap = [] then
    Format.fprintf ppf "no metrics recorded (run with --metrics)@."
  else begin
    (* ---- phases ---- *)
    let phases = Metrics.Snapshot.histograms snap ~name:"phase_ns" in
    if phases <> [] then begin
      hist_header ppf "phases";
      List.iter
        (fun (labels, h) -> hist_row ppf ~name:(label labels "phase") h)
        phases;
      Format.fprintf ppf "@."
    end;

    (* ---- hot constraints ---- *)
    let constraints =
      Metrics.Snapshot.histograms snap ~name:"constraint_eval_ns"
      |> List.filter (fun ((_, h) : _ * Metrics.hist_snapshot) -> h.s_count > 0)
      |> List.sort (fun (_, a) (_, b) ->
             compare
               (b.Metrics.s_sum, b.Metrics.s_count)
               (a.Metrics.s_sum, a.Metrics.s_count))
    in
    if constraints <> [] then begin
      let total =
        List.fold_left (fun acc (_, h) -> acc + h.Metrics.s_sum) 0 constraints
      in
      let shown = List.filteri (fun i _ -> i < top) constraints in
      hist_header ppf
        (Printf.sprintf "hot constraints (top %d of %d, by total eval time)"
           (List.length shown) (List.length constraints));
      List.iter
        (fun (labels, h) -> hist_row ppf ~name:(label labels "constraint") h)
        shown;
      let shown_sum =
        List.fold_left (fun acc (_, h) -> acc + h.Metrics.s_sum) 0 shown
      in
      if total > 0 then
        Format.fprintf ppf "  shown constraints cover %.1f%% of %s eval time@."
          (100.0 *. float_of_int shown_sum /. float_of_int total)
          (Units.duration_ns total);
      Format.fprintf ppf "@."
    end;

    (* ---- loop entries per depth ---- *)
    let entries =
      List.filter_map
        (fun (it : Metrics.item) ->
          match it.value with
          | Metrics.Vcounter v when it.name = "loop_entries_total" ->
            Some (it.labels, v)
          | _ -> None)
        snap
      (* The snapshot orders labels lexicographically; depths are
         numeric, so re-sort. *)
      |> List.sort (fun (a, _) (b, _) ->
             let depth l =
               Option.bind (List.assoc_opt "depth" l) int_of_string_opt
             in
             compare (depth a, a) (depth b, b))
    in
    if entries <> [] then begin
      Format.fprintf ppf "loop entries@.";
      Format.fprintf ppf "  %-8s %-12s %12s@." "depth" "var" "entries";
      List.iter
        (fun (labels, v) ->
          Format.fprintf ppf "  %-8s %-12s %12s@." (label labels "depth")
            (label labels "var") (Units.si_int v))
        entries;
      Format.fprintf ppf "@."
    end;

    (* ---- chunk-duration skew ---- *)
    let chunks = Metrics.Snapshot.histograms snap ~name:"chunk_duration_ns" in
    if chunks <> [] then begin
      hist_header ppf "scheduler chunks";
      List.iter
        (fun (labels, h) ->
          let name =
            match List.assoc_opt "space" labels with
            | Some s -> s
            | None -> "chunks"
          in
          hist_row ppf ~name h)
        chunks;
      List.iter
        (fun ((_, h) : _ * Metrics.hist_snapshot) ->
          if h.s_count > 0 then begin
            let mean = Metrics.Snapshot.mean h in
            let worst = float_of_int (Metrics.Snapshot.max_bound h) in
            if mean > 0.0 then
              Format.fprintf ppf
                "  skew: slowest chunk <= %s, %.1fx the mean chunk@."
                (Units.duration_ns_f worst) (worst /. mean)
          end)
        chunks;
      Format.fprintf ppf "@."
    end;

    (* ---- plain counters and gauges ---- *)
    let plain =
      List.filter
        (fun (it : Metrics.item) ->
          match it.value with
          | Metrics.Vhist _ -> false
          | _ -> it.name <> "loop_entries_total")
        snap
    in
    if plain <> [] then begin
      Format.fprintf ppf "counters@.";
      List.iter
        (fun (it : Metrics.item) ->
          let labels =
            if it.labels = [] then ""
            else
              "{"
              ^ String.concat ","
                  (List.map (fun (k, v) -> k ^ "=" ^ v) it.labels)
              ^ "}"
          in
          match it.value with
          | Metrics.Vcounter v ->
            Format.fprintf ppf "  %-40s %12s@." (it.name ^ labels)
              (Units.si_int v)
          | Metrics.Vgauge v ->
            Format.fprintf ppf "  %-40s %12g@." (it.name ^ labels) v
          | Metrics.Vhist _ -> ())
        plain
    end
  end
